//! Churn-incremental re-selection: the old/new-table pattern.
//!
//! A full RAC pass after a topology delta re-scores every `(origin, group)` candidate batch,
//! although a single link flap only perturbs the batches whose hop chains cross that link.
//! [`IncrementalSelection`] keeps a table of previous selections per `(origin, group)` (the
//! "old table"); a churn delta — mapped by the simulator's churn engine into a neutral
//! [`SelectionDelta`] — invalidates exactly the entries whose recorded link/AS footprint
//! intersects the delta, and the next pass re-runs the wrapped algorithm only for
//! invalidated or changed batches, reusing the stored result everywhere else. Entries
//! re-validated or recomputed during a pass form the "new table";
//! [`IncrementalSelection::commit_round`] swaps it in, aging out batches that disappeared.
//!
//! Correctness does not hinge on the invalidation being precise: every reuse is guarded by a
//! fingerprint over the batch content and selection context, so a stale entry that somehow
//! survives an imprecise delta is still discarded when the batch itself changed. The
//! equality `incremental selection == full recompute` therefore holds per step by
//! construction — the point of the table is to make the cheap path the common one, which
//! the [`stats`](IncrementalSelection::stats) counters expose for tests and benches.

use crate::{AlgorithmContext, CandidateBatch, RoutingAlgorithm, SelectionResult};
use irec_types::{AsId, IfId, InterfaceGroupId, Result};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A topology delta in selection terms: which hop-chain footprints are stale. The simulator
/// maps its churn deltas (`link-down`, `node-leave`, ...) into this neutral form so the
/// algorithms crate stays independent of the simulation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionDelta {
    /// A link changed state; the payload is its `(AS, interface)` endpoint keys as they
    /// appear in PCB hop entries.
    Link(Vec<(AsId, IfId)>),
    /// An AS joined or left the topology.
    As(AsId),
    /// A change that can affect every batch (e.g. a RAC catalog swap).
    All,
}

/// Counters exposing how the table behaved: how often the cached result was reused, how
/// often the wrapped algorithm actually ran, and how many entries deltas invalidated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Selections served from the table.
    pub reused: usize,
    /// Selections that ran the wrapped algorithm.
    pub recomputed: usize,
    /// Table entries dropped by [`SelectionDelta`]s.
    pub invalidated: usize,
}

/// One old-table entry: the stored selection plus the footprint and fingerprint guarding it.
#[derive(Debug, Clone)]
struct TableEntry {
    fingerprint: u64,
    links: BTreeSet<(AsId, IfId)>,
    ases: BTreeSet<AsId>,
    result: SelectionResult,
}

/// The incremental re-selection wrapper around a [`RoutingAlgorithm`]. See the module docs
/// for the old/new-table flow.
pub struct IncrementalSelection {
    algorithm: Arc<dyn RoutingAlgorithm>,
    table: BTreeMap<(AsId, InterfaceGroupId), TableEntry>,
    fresh: BTreeSet<(AsId, InterfaceGroupId)>,
    stats: IncrementalStats,
}

impl IncrementalSelection {
    /// Wraps `algorithm` with an empty table.
    pub fn new(algorithm: Arc<dyn RoutingAlgorithm>) -> Self {
        IncrementalSelection {
            algorithm,
            table: BTreeMap::new(),
            fresh: BTreeSet::new(),
            stats: IncrementalStats::default(),
        }
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &Arc<dyn RoutingAlgorithm> {
        &self.algorithm
    }

    /// The table's behaviour counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Number of stored selections.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Drops every entry whose footprint intersects `delta`; returns how many were dropped.
    pub fn apply_delta(&mut self, delta: &SelectionDelta) -> usize {
        let before = self.table.len();
        match delta {
            SelectionDelta::All => self.table.clear(),
            SelectionDelta::Link(endpoints) => self.table.retain(|_, entry| {
                !endpoints
                    .iter()
                    .any(|e| entry.links.contains(e) || entry.ases.contains(&e.0))
            }),
            SelectionDelta::As(asn) => self
                .table
                .retain(|(origin, _), entry| origin != asn && !entry.ases.contains(asn)),
        }
        let dropped = before - self.table.len();
        self.stats.invalidated += dropped;
        dropped
    }

    /// Selects for one batch: the stored result when the entry survived all deltas and the
    /// batch/context fingerprint still matches, a fresh run of the wrapped algorithm
    /// otherwise. Either way the entry lands in the new table.
    pub fn select(
        &mut self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        let key = (batch.origin, batch.group);
        let fingerprint = fingerprint(batch, ctx);
        if let Some(entry) = self.table.get(&key) {
            if entry.fingerprint == fingerprint {
                self.stats.reused += 1;
                self.fresh.insert(key);
                return Ok(entry.result.clone());
            }
        }
        let result = self.algorithm.select(batch, ctx)?;
        let mut links = BTreeSet::new();
        let mut ases = BTreeSet::new();
        for c in &batch.candidates {
            for (asn, ifid) in c.pcb.link_keys() {
                links.insert((asn, ifid));
                ases.insert(asn);
            }
        }
        self.table.insert(
            key,
            TableEntry {
                fingerprint,
                links,
                ases,
                result: result.clone(),
            },
        );
        self.fresh.insert(key);
        self.stats.recomputed += 1;
        Ok(result)
    }

    /// Ends one pass: entries not re-selected since the previous commit age out (their
    /// batches no longer exist), and the new table becomes the old one.
    pub fn commit_round(&mut self) {
        let fresh = std::mem::take(&mut self.fresh);
        self.table.retain(|key, _| fresh.contains(key));
    }
}

/// Order-sensitive fingerprint over the batch content and the selection context: candidate
/// digests and ingress interfaces, the egress list, and the budget/extension knobs.
fn fingerprint(batch: &CandidateBatch, ctx: &AlgorithmContext<'_>) -> u64 {
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut fold = |word: u64| {
        state = splitmix64(state ^ word);
    };
    fold(batch.origin.value());
    fold(u64::from(batch.group.value()));
    fold(batch.target.map_or(u64::MAX, |t| t.value()));
    for c in &batch.candidates {
        for chunk in c.pcb.digest().0 .0.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            fold(u64::from_le_bytes(word));
        }
        fold(u64::from(c.ingress.value()));
    }
    fold(ctx.local_as.id.value());
    for egress in &ctx.egress_interfaces {
        fold(u64::from(egress.value()));
    }
    fold(ctx.max_selected as u64);
    fold(u64::from(ctx.extend_paths));
    state
}

/// The splitmix64 finalizer (one-shot form of the repo's standard mixing recipe).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::KShortestPaths;
    use crate::testutil::{candidate_with_links, local_as};

    fn ctx(node: &irec_topology::AsNode) -> AlgorithmContext<'_> {
        AlgorithmContext::new(node, vec![IfId(3)], 20)
    }

    fn batch(origin: u64, shift: u64) -> CandidateBatch {
        CandidateBatch::new(
            AsId(origin),
            InterfaceGroupId::DEFAULT,
            (0..4)
                .map(|i| {
                    candidate_with_links(origin, &[(origin, (i + shift) as u32 + 1), (9 + i, 1)], 1)
                })
                .collect(),
        )
    }

    fn incremental() -> IncrementalSelection {
        IncrementalSelection::new(Arc::new(KShortestPaths::new(3)))
    }

    #[test]
    fn second_pass_reuses_and_matches_full_recompute() {
        let node = local_as();
        let b = batch(1, 0);
        let mut inc = incremental();
        let first = inc.select(&b, &ctx(&node)).unwrap();
        let again = inc.select(&b, &ctx(&node)).unwrap();
        let full = inc.algorithm().clone().select(&b, &ctx(&node)).unwrap();
        assert_eq!(first, again);
        assert_eq!(again, full);
        assert_eq!(inc.stats().recomputed, 1);
        assert_eq!(inc.stats().reused, 1);
        assert_eq!(inc.len(), 1);
        assert!(!inc.is_empty());
    }

    #[test]
    fn link_delta_invalidates_only_crossing_batches() {
        let node = local_as();
        let mut inc = incremental();
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        inc.select(&batch(2, 0), &ctx(&node)).unwrap();
        // Batch 1's chains cross (1, 1); batch 2's cross (2, 1) — only batch 1 drops.
        let dropped = inc.apply_delta(&SelectionDelta::Link(vec![(AsId(1), IfId(1))]));
        assert_eq!(dropped, 1);
        assert_eq!(inc.len(), 1);
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        inc.select(&batch(2, 0), &ctx(&node)).unwrap();
        assert_eq!(inc.stats().recomputed, 3, "batch 1 recomputed once more");
        assert_eq!(inc.stats().reused, 1, "batch 2 reused");
        assert_eq!(inc.stats().invalidated, 1);
    }

    #[test]
    fn as_delta_invalidates_traversing_and_originating_batches() {
        let node = local_as();
        let mut inc = incremental();
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        inc.select(&batch(2, 0), &ctx(&node)).unwrap();
        // AS 9 sits on every chain (the second hop of candidate 0).
        assert_eq!(inc.apply_delta(&SelectionDelta::As(AsId(9))), 2);
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        assert_eq!(inc.apply_delta(&SelectionDelta::As(AsId(1))), 1);
        assert_eq!(inc.apply_delta(&SelectionDelta::All), 0);
    }

    #[test]
    fn changed_batch_content_defeats_stale_reuse() {
        let node = local_as();
        let mut inc = incremental();
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        // Same (origin, group) key, different candidates, no delta applied: the fingerprint
        // guard must force a recompute rather than serving the stale entry.
        let changed = batch(1, 3);
        let r = inc.select(&changed, &ctx(&node)).unwrap();
        let full = inc
            .algorithm()
            .clone()
            .select(&changed, &ctx(&node))
            .unwrap();
        assert_eq!(r, full);
        assert_eq!(inc.stats().recomputed, 2);
        assert_eq!(inc.stats().reused, 0);
    }

    #[test]
    fn context_change_defeats_stale_reuse() {
        let node = local_as();
        let mut inc = incremental();
        let b = batch(1, 0);
        inc.select(&b, &ctx(&node)).unwrap();
        let mut tight = ctx(&node);
        tight.max_selected = 1;
        let r = inc.select(&b, &tight).unwrap();
        assert_eq!(r.per_egress[&IfId(3)].len(), 1);
        assert_eq!(inc.stats().recomputed, 2);
    }

    #[test]
    fn commit_round_ages_out_vanished_batches() {
        let node = local_as();
        let mut inc = incremental();
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        inc.select(&batch(2, 0), &ctx(&node)).unwrap();
        inc.commit_round();
        assert_eq!(inc.len(), 2);
        // Next pass only sees origin 1; origin 2's entry ages out on commit.
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        inc.commit_round();
        assert_eq!(inc.len(), 1);
    }
}
