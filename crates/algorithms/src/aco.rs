//! **ACO** — a seeded ant-colony multi-criteria selector.
//!
//! Where the score-based selectors rank candidates by one criterion, ACO searches over the
//! blended (latency, hop count, bandwidth) cost with a stochastic-looking but fully
//! deterministic procedure: a fixed number of ants per iteration sample candidate subsets
//! with probability proportional to `pheromone × heuristic`, the iteration-best subset
//! deposits pheromone, pheromone evaporates, and after the per-round iteration budget the
//! candidates are ranked by accumulated pheromone.
//!
//! Determinism is load-bearing (the engine's byte-identity guarantee must hold for every
//! catalog algorithm): all randomness flows through splitmix64 streams seeded from
//! `(algorithm seed, origin, group, egress, iteration, ant)`, all arithmetic is integer, and
//! `select` takes `&self` — no state survives a call, so worker count, shard count and
//! scheduler choice cannot reorder anything the sampler observes.

use crate::{AlgorithmContext, CandidateBatch, RoutingAlgorithm, SelectionResult};
use irec_types::{IfId, Result};

/// Default seed used by the bare `aco` catalog name.
pub const DEFAULT_ACO_SEED: u64 = 1;

/// Default per-round iteration budget used by the bare `aco` catalog name.
pub const DEFAULT_ACO_ITERATIONS: usize = 16;

/// Upper bound on the per-round iteration budget accepted by the catalog.
pub const MAX_ACO_ITERATIONS: usize = 1024;

/// Ants launched per iteration.
const ANTS: usize = 8;

/// Initial pheromone on every candidate.
const PHEROMONE_INIT: u64 = 1_000;

/// Pheromone deposited on each member of the iteration-best subset.
const DEPOSIT: u64 = 400;

/// Fixed-point scale of the heuristic attractiveness term.
const HEURISTIC_SCALE: u64 = 1 << 20;

/// The seeded ant-colony selector. See the module docs for the procedure and the
/// determinism contract.
pub struct AntColony {
    seed: u64,
    iterations: usize,
    k: usize,
}

impl AntColony {
    /// Creates the selector with the given seed, per-round iteration budget and per-egress
    /// selection budget.
    pub fn new(seed: u64, iterations: usize, k: usize) -> Self {
        AntColony {
            seed,
            iterations: iterations.max(1),
            k,
        }
    }

    /// The selector's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The selector's per-round iteration budget.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    fn select_for_egress(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
        egress: IfId,
    ) -> Vec<usize> {
        let budget = self.k.min(ctx.max_selected);
        // Eligible candidates with their blended multi-criteria cost.
        let eligible: Vec<(usize, u64)> = batch
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ingress != egress && !c.pcb.contains_as(ctx.local_as.id))
            .map(|(i, c)| {
                let m = ctx.metrics_at_egress(c, egress);
                let latency_us = m.latency.as_micros();
                let hops = u64::from(m.hops);
                // Wider paths are cheaper; +1 keeps the division total.
                let inverse_bw = 1_000_000_000 / (1 + m.bandwidth.as_kbps());
                (i, latency_us + 50_000 * hops + inverse_bw)
            })
            .collect();
        if eligible.is_empty() || budget == 0 {
            return Vec::new();
        }
        let subset = budget.min(eligible.len());

        let mut pheromone = vec![PHEROMONE_INIT; eligible.len()];
        let heuristic: Vec<u64> = eligible
            .iter()
            .map(|&(_, cost)| (HEURISTIC_SCALE / (1 + cost)).max(1))
            .collect();

        for iteration in 0..self.iterations {
            // Iteration-best subset: lowest total cost, ties broken by member positions.
            let mut best: Option<(u64, Vec<usize>)> = None;
            for ant in 0..ANTS {
                let mut rng = stream_seed(&[
                    self.seed,
                    batch.origin.value(),
                    u64::from(batch.group.value()),
                    u64::from(egress.value()),
                    iteration as u64,
                    ant as u64,
                ]);
                let walk = sample_subset(&pheromone, &heuristic, subset, &mut rng);
                let cost: u64 = walk.iter().map(|&pos| eligible[pos].1).sum();
                let candidate = (cost, walk);
                if best.as_ref().is_none_or(|b| candidate < *b) {
                    best = Some(candidate);
                }
            }
            for p in &mut pheromone {
                *p = (*p * 9 / 10).max(1);
            }
            if let Some((_, walk)) = best {
                for pos in walk {
                    pheromone[pos] += DEPOSIT;
                }
            }
        }

        // Final ranking: accumulated pheromone descending, then cost, then candidate index.
        let mut order: Vec<usize> = (0..eligible.len()).collect();
        order.sort_by_key(|&pos| (u64::MAX - pheromone[pos], eligible[pos].1, pos));
        order
            .into_iter()
            .take(budget)
            .map(|pos| eligible[pos].0)
            .collect()
    }
}

impl RoutingAlgorithm for AntColony {
    fn name(&self) -> &str {
        "ACO"
    }

    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        let mut result = SelectionResult::empty();
        for &egress in &ctx.egress_interfaces {
            result.insert(egress, self.select_for_egress(batch, ctx, egress));
        }
        Ok(result)
    }
}

/// Weighted sampling without replacement: `count` distinct positions drawn with probability
/// proportional to `pheromone × heuristic`, in draw order.
fn sample_subset(pheromone: &[u64], heuristic: &[u64], count: usize, rng: &mut u64) -> Vec<usize> {
    let mut taken = vec![false; pheromone.len()];
    let mut picks = Vec::with_capacity(count);
    for _ in 0..count {
        let total: u64 = (0..pheromone.len())
            .filter(|&p| !taken[p])
            .map(|p| pheromone[p] * heuristic[p])
            .sum();
        let mut roll = splitmix64(rng) % total;
        for p in 0..pheromone.len() {
            if taken[p] {
                continue;
            }
            let weight = pheromone[p] * heuristic[p];
            if roll < weight {
                taken[p] = true;
                picks.push(p);
                break;
            }
            roll -= weight;
        }
    }
    picks
}

/// Folds the seed words into one splitmix64 stream state.
fn stream_seed(words: &[u64]) -> u64 {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for &word in words {
        state = splitmix64(&mut state) ^ word.wrapping_mul(0xff51_afd7_ed55_8ccd);
    }
    splitmix64(&mut state)
}

/// The splitmix64 step — the repo's standard deterministic mixing recipe.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{candidate, local_as};
    use crate::CandidateBatch;
    use irec_types::{AsId, InterfaceGroupId};

    fn ctx(node: &irec_topology::AsNode) -> AlgorithmContext<'_> {
        AlgorithmContext::new(node, vec![IfId(3)], 20)
    }

    fn batch(n: u64) -> CandidateBatch {
        CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            (0..n)
                .map(|i| candidate(1, &[(10 + 3 * i, 100 + 10 * i), (5 + i, 50)], 1))
                .collect(),
        )
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        let node = local_as();
        let b = batch(12);
        let alg = AntColony::new(7, 16, 5);
        let a = alg.select(&b, &ctx(&node)).unwrap();
        let c = alg.select(&b, &ctx(&node)).unwrap();
        assert_eq!(a, c);
        assert_eq!(a.per_egress[&IfId(3)].len(), 5);
        assert_eq!(alg.name(), "ACO");
        assert_eq!(alg.seed(), 7);
        assert_eq!(alg.iterations(), 16);
    }

    #[test]
    fn different_seeds_can_disagree() {
        let node = local_as();
        let b = batch(24);
        let any_diverged = (0..16u64).any(|s| {
            let a = AntColony::new(s, 4, 6).select(&b, &ctx(&node)).unwrap();
            let c = AntColony::new(s + 100, 4, 6)
                .select(&b, &ctx(&node))
                .unwrap();
            a != c
        });
        assert!(any_diverged, "seed must influence the search");
    }

    #[test]
    fn converges_towards_cheap_candidates() {
        let node = local_as();
        // One candidate is strictly dominant; with a real iteration budget it must come
        // out first in the pheromone ranking.
        let mut candidates = vec![candidate(1, &[(1, 1000)], 1)];
        candidates.extend((0..9).map(|i| candidate(1, &[(200 + i, 10), (200, 10)], 1)));
        let b = CandidateBatch::new(AsId(1), InterfaceGroupId::DEFAULT, candidates);
        let r = AntColony::new(3, 32, 4).select(&b, &ctx(&node)).unwrap();
        assert_eq!(r.per_egress[&IfId(3)][0], 0);
    }

    #[test]
    fn respects_budget_and_eligibility() {
        let node = local_as();
        let mut b = batch(6);
        b.candidates.push(candidate(500, &[(10, 100)], 1)); // own-AS loop
        b.candidates.push(candidate(1, &[(10, 100)], 3)); // arrived on the egress
        let mut tight = ctx(&node);
        tight.max_selected = 2;
        let r = AntColony::new(1, 8, 5).select(&b, &tight).unwrap();
        let picks = &r.per_egress[&IfId(3)];
        assert_eq!(picks.len(), 2);
        assert!(picks.iter().all(|&i| i < 6));
    }

    #[test]
    fn empty_batch_selects_nothing() {
        let node = local_as();
        let b = CandidateBatch::new(AsId(1), InterfaceGroupId::DEFAULT, vec![]);
        let r = AntColony::new(1, 4, 5).select(&b, &ctx(&node)).unwrap();
        assert!(r.per_egress[&IfId(3)].is_empty());
    }
}
