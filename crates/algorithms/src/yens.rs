//! **kYEN** — exact loop-free k-shortest path enumeration (Yen's algorithm).
//!
//! [`crate::score::KShortestPaths`] is a score-truncation heuristic: it ranks the *received
//! candidates* by hop count and keeps the top k, so duplicate hop chains occupy several
//! slots and the ranking never looks at the path structure. `YensKShortest` is the exact
//! reference baseline: it rebuilds the multigraph induced by the candidates' hop chains,
//! enumerates the k shortest *loop-free* paths from the batch's origin to the local AS with
//! Yen's algorithm (deviation paths off each accepted path, shortest-first), and maps each
//! enumerated path back to the candidate that carries it. Consequences that distinguish it
//! from the heuristic:
//!
//! * duplicate hop chains are enumerated once (the lowest candidate index wins),
//! * candidates whose chain revisits an AS are never enumerated (Yen's paths are simple),
//! * ties between equal-length paths break by chain content (lexicographic), not by
//!   candidate arrival order.
//!
//! Enumeration is fully deterministic — adjacency is kept in ordered sets and the candidate
//! queue is a `BTreeSet` — so selections are byte-identical across parallelism planes.

use crate::{AlgorithmContext, CandidateBatch, RoutingAlgorithm, SelectionResult};
use irec_types::{AsId, IfId, Result};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Deterministic cap on shortest-path subroutine invocations per egress interface, so a
/// dense multigraph with a huge k cannot wedge a round (the spur loop runs one subroutine
/// call per spur node per accepted path).
const MAX_EXPANSIONS: usize = 10_000;

/// A graph node: the virtual source (fans out to every chain's first AS), an AS on the
/// inter-domain path, or the local AS the candidates were received by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Node {
    Source,
    As(AsId),
    Local,
}

/// One directed edge: where it leads plus its identity label. Inter-AS edges are labelled
/// by the upstream hop's egress interface; the final delivery edge into the local AS also
/// carries the local ingress interface, which keeps parallel last-hop links distinct.
type EdgeLabel = (IfId, IfId);
type Edge = (Node, Node, EdgeLabel);

/// A path is its edge sequence; comparing paths compares (length, content) lexicographically
/// because `Vec: Ord` is lexicographic and we order by `(len, edges)` tuples explicitly.
type Path = Vec<Edge>;

/// Exact Yen's k-shortest selection. See the module docs for how it differs from the
/// [`crate::score::KShortestPaths`] heuristic it is the reference baseline for.
pub struct YensKShortest {
    k: usize,
    name: String,
}

impl YensKShortest {
    /// Creates the algorithm enumerating up to `k` shortest loop-free paths per egress.
    pub fn new(k: usize) -> Self {
        YensKShortest {
            k,
            name: format!("{k}YEN"),
        }
    }

    fn select_for_egress(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
        egress: IfId,
    ) -> Vec<usize> {
        let budget = self.k.min(ctx.max_selected);
        // Build the candidate-induced multigraph and the chain -> candidate index map.
        let mut adjacency: BTreeMap<Node, BTreeSet<(Node, EdgeLabel)>> = BTreeMap::new();
        let mut chain_to_candidate: BTreeMap<Path, usize> = BTreeMap::new();
        for (idx, c) in batch.candidates.iter().enumerate() {
            if c.ingress == egress || c.pcb.contains_as(ctx.local_as.id) {
                continue;
            }
            let links = c.pcb.link_keys();
            if links.is_empty() {
                continue;
            }
            let mut chain: Path =
                vec![(Node::Source, Node::As(links[0].0), (IfId::NONE, IfId::NONE))];
            for window in links.windows(2) {
                let (from_as, egress_if) = window[0];
                let (to_as, _) = window[1];
                chain.push((Node::As(from_as), Node::As(to_as), (egress_if, IfId::NONE)));
            }
            let (last_as, last_egress) = links[links.len() - 1];
            chain.push((Node::As(last_as), Node::Local, (last_egress, c.ingress)));
            for &(from, to, label) in &chain {
                adjacency.entry(from).or_default().insert((to, label));
            }
            // Duplicate chains collapse onto the earliest candidate.
            chain_to_candidate.entry(chain).or_insert(idx);
        }
        if chain_to_candidate.is_empty() {
            return Vec::new();
        }

        enumerate_selected(&adjacency, &chain_to_candidate, budget)
    }
}

impl RoutingAlgorithm for YensKShortest {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        let mut result = SelectionResult::empty();
        for &egress in &ctx.egress_interfaces {
            result.insert(egress, self.select_for_egress(batch, ctx, egress));
        }
        Ok(result)
    }
}

/// Yen's algorithm over the multigraph: enumerates simple `Source -> Local` paths in
/// (length, lexicographic-content) order and collects the candidates carrying them, until
/// `budget` candidates are selected, the graph is exhausted, or the expansion cap trips.
/// Cross-combination paths (mixing edges of different candidates) are legal enumerations
/// but carry no received beacon, so they consume enumeration steps without selecting.
fn enumerate_selected(
    adjacency: &BTreeMap<Node, BTreeSet<(Node, EdgeLabel)>>,
    chain_to_candidate: &BTreeMap<Path, usize>,
    budget: usize,
) -> Vec<usize> {
    let mut selected = Vec::new();
    let collect = |path: &Path, selected: &mut Vec<usize>| {
        if let Some(&idx) = chain_to_candidate.get(path) {
            selected.push(idx);
        }
    };
    let mut expansions = 0usize;
    let Some(first) = shortest_path(
        adjacency,
        Node::Source,
        &BTreeSet::new(),
        &BTreeSet::new(),
        &mut expansions,
    ) else {
        return selected;
    };
    collect(&first, &mut selected);
    let mut accepted: Vec<Path> = vec![first];
    let mut frontier: BTreeSet<(usize, Path)> = BTreeSet::new();
    while selected.len() < budget && expansions < MAX_EXPANSIONS {
        let previous = accepted.last().expect("accepted is non-empty").clone();
        for spur_index in 0..previous.len() {
            let root = &previous[..spur_index];
            let spur_node = previous[spur_index].0;
            // Ban the next edge of every already-accepted path sharing this root, and every
            // root node except the spur node itself — the standard Yen deviation setup.
            let mut banned_edges: BTreeSet<Edge> = BTreeSet::new();
            for path in &accepted {
                if path.len() > spur_index && path[..spur_index] == *root {
                    banned_edges.insert(path[spur_index]);
                }
            }
            let banned_nodes: BTreeSet<Node> = root.iter().map(|&(from, _, _)| from).collect();
            if let Some(spur) = shortest_path(
                adjacency,
                spur_node,
                &banned_edges,
                &banned_nodes,
                &mut expansions,
            ) {
                let mut total = root.to_vec();
                total.extend(spur);
                frontier.insert((total.len(), total));
            }
            if expansions >= MAX_EXPANSIONS {
                break;
            }
        }
        // Pop the shortest (then lexicographically smallest) unaccepted deviation.
        let next = loop {
            let Some(entry) = frontier.pop_first() else {
                return selected;
            };
            if !accepted.contains(&entry.1) {
                break entry.1;
            }
        };
        collect(&next, &mut selected);
        accepted.push(next);
    }
    selected
}

/// Shortest `start -> Local` path avoiding the banned edges and nodes, with ties broken by
/// lexicographic edge content. Dijkstra over unit weights with `(len, path)` priorities:
/// path priority is prefix-monotone under extension, so the first pop of a node yields its
/// optimal path and later pops can be skipped.
fn shortest_path(
    adjacency: &BTreeMap<Node, BTreeSet<(Node, EdgeLabel)>>,
    start: Node,
    banned_edges: &BTreeSet<Edge>,
    banned_nodes: &BTreeSet<Node>,
    expansions: &mut usize,
) -> Option<Path> {
    *expansions += 1;
    // Seeding `visited` with the root's nodes keeps the spur path simple w.r.t. the root
    // prefix it extends.
    let mut visited: BTreeSet<Node> = banned_nodes.clone();
    let mut heap: BinaryHeap<std::cmp::Reverse<(usize, Path, Node)>> = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0, Vec::new(), start)));
    while let Some(std::cmp::Reverse((len, path, node))) = heap.pop() {
        if node == Node::Local {
            return Some(path);
        }
        if !visited.insert(node) && len > 0 {
            continue;
        }
        let Some(successors) = adjacency.get(&node) else {
            continue;
        };
        for &(to, label) in successors {
            let edge = (node, to, label);
            if banned_edges.contains(&edge) || visited.contains(&to) {
                continue;
            }
            let mut next = path.clone();
            next.push(edge);
            heap.push(std::cmp::Reverse((len + 1, next, to)));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{candidate_with_links, local_as};
    use crate::CandidateBatch;
    use irec_types::{AsId, InterfaceGroupId};

    fn ctx(node: &irec_topology::AsNode) -> AlgorithmContext<'_> {
        AlgorithmContext::new(node, vec![IfId(3)], 20)
    }

    #[test]
    fn enumerates_paths_shortest_first() {
        let node = local_as();
        let b = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            vec![
                candidate_with_links(1, &[(1, 1), (2, 1), (3, 1)], 1),
                candidate_with_links(1, &[(1, 2), (4, 1)], 1),
                candidate_with_links(1, &[(1, 3)], 1),
            ],
        );
        let r = YensKShortest::new(3).select(&b, &ctx(&node)).unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![2, 1, 0]);
    }

    #[test]
    fn duplicate_chains_are_enumerated_once() {
        let node = local_as();
        // Candidates 0 and 1 carry the identical hop chain; the heuristic kSP would keep
        // both, the exact enumeration keeps one (lowest index) and moves on.
        let b = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            vec![
                candidate_with_links(1, &[(1, 1), (2, 1)], 1),
                candidate_with_links(1, &[(1, 1), (2, 1)], 1),
                candidate_with_links(1, &[(1, 2), (3, 1), (4, 1)], 1),
            ],
        );
        let r = YensKShortest::new(3).select(&b, &ctx(&node)).unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![0, 2]);
    }

    #[test]
    fn budget_and_context_limit_truncate() {
        let node = local_as();
        let b = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            (0..6)
                .map(|i| candidate_with_links(1, &[(1, i + 1), (2, i + 1)], 1))
                .collect(),
        );
        let r = YensKShortest::new(4).select(&b, &ctx(&node)).unwrap();
        assert_eq!(r.per_egress[&IfId(3)].len(), 4);
        let mut tight = ctx(&node);
        tight.max_selected = 2;
        let r2 = YensKShortest::new(4).select(&b, &tight).unwrap();
        assert_eq!(r2.per_egress[&IfId(3)].len(), 2);
    }

    #[test]
    fn skips_ingress_equals_egress_and_own_as() {
        let node = local_as();
        let own = candidate_with_links(500, &[(500, 1)], 1); // traverses the local AS
        let from_egress = candidate_with_links(1, &[(1, 1)], 3); // arrived on if3
        let b = CandidateBatch::new(AsId(1), InterfaceGroupId::DEFAULT, vec![own, from_egress]);
        let r = YensKShortest::new(5).select(&b, &ctx(&node)).unwrap();
        assert!(r.per_egress[&IfId(3)].is_empty());
    }

    #[test]
    fn cross_combination_paths_are_not_selected() {
        let node = local_as();
        // Chains 1->2->L and 1->3->L share the first AS; the graph also contains the
        // deviations 1->2 followed by nothing (2 only connects onward in chain 0) — any
        // enumerated mix of edges that matches no received candidate must be skipped, so
        // exactly the two real candidates come back.
        let b = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            vec![
                candidate_with_links(1, &[(1, 1), (2, 1)], 1),
                candidate_with_links(1, &[(1, 2), (3, 1)], 1),
            ],
        );
        let r = YensKShortest::new(5).select(&b, &ctx(&node)).unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![0, 1]);
    }

    // No looped-chain test: `Pcb::extend` refuses to create loops, so a candidate whose
    // chain revisits an AS cannot be constructed through the public API — Yen's
    // simple-path property is a defensive second line, exercised structurally by the
    // enumeration itself.

    #[test]
    fn selection_is_deterministic() {
        let node = local_as();
        let b = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            (0..12u64)
                .map(|i| {
                    candidate_with_links(1, &[(1, (i % 4) as u32 + 1), (2 + i, 1), (30 + i, 1)], 1)
                })
                .collect(),
        );
        let alg = YensKShortest::new(6);
        let a = alg.select(&b, &ctx(&node)).unwrap();
        let c = alg.select(&b, &ctx(&node)).unwrap();
        assert_eq!(a, c);
        assert_eq!(alg.name(), "6YEN");
    }

    #[test]
    fn empty_batch_selects_nothing() {
        let node = local_as();
        let b = CandidateBatch::new(AsId(1), InterfaceGroupId::DEFAULT, vec![]);
        let r = YensKShortest::new(5).select(&b, &ctx(&node)).unwrap();
        assert!(r.per_egress[&IfId(3)].is_empty());
    }
}
