//! Disjointness-oriented algorithms: HD (heuristic disjointness) and the building blocks of
//! PD (pull-based disjointness).

use crate::{AlgorithmContext, CandidateBatch, RoutingAlgorithm, SelectionResult};
use irec_irvm::Program;
use irec_types::{AsId, IfId, Result};
use std::collections::HashSet;

/// Inter-domain links of one candidate, keyed by (AS, egress interface).
type LinkSet = HashSet<(AsId, IfId)>;

/// Candidate index with its link set and hop count, as ranked by HD.
type RankedCandidate = (usize, LinkSet, u32);

/// **HD — heuristic disjointness** (Krähenbühl et al., as used in §VIII-B of the paper).
///
/// Greedy selection maximizing inter-domain link disjointness: starting from the shortest
/// candidate, repeatedly add the candidate that shares the fewest links with the already
/// selected set (ties broken by hop count, then candidate order), up to the selection budget.
pub struct HeuristicDisjointness {
    k: usize,
}

impl HeuristicDisjointness {
    /// Creates the HD algorithm with the given per-egress budget.
    pub fn new(k: usize) -> Self {
        HeuristicDisjointness { k }
    }

    fn select_for_egress(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
        egress: IfId,
    ) -> Vec<usize> {
        let budget = self.k.min(ctx.max_selected);
        // Eligible candidates with their link sets.
        let eligible: Vec<RankedCandidate> = batch
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ingress != egress && !c.pcb.contains_as(ctx.local_as.id))
            .map(|(i, c)| {
                let links: LinkSet = c.pcb.link_keys().into_iter().collect();
                (i, links, c.pcb.path_metrics().hops)
            })
            .collect();
        if eligible.is_empty() {
            return Vec::new();
        }

        let mut selected: Vec<usize> = Vec::new();
        let mut used_links: LinkSet = HashSet::new();
        let mut remaining: Vec<&RankedCandidate> = eligible.iter().collect();

        while selected.len() < budget && !remaining.is_empty() {
            // Pick the candidate with the fewest shared links, then fewest hops, then index.
            let (best_pos, _) = remaining
                .iter()
                .enumerate()
                .min_by_key(|(_, (idx, links, hops))| {
                    let overlap = links.intersection(&used_links).count();
                    (overlap, *hops, *idx)
                })
                .expect("remaining is non-empty");
            let (idx, links, _) = remaining.remove(best_pos);
            used_links.extend(links.iter().copied());
            selected.push(*idx);
        }
        selected
    }
}

impl RoutingAlgorithm for HeuristicDisjointness {
    fn name(&self) -> &str {
        "HD"
    }

    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        let mut result = SelectionResult::empty();
        for &egress in &ctx.egress_interfaces {
            result.insert(egress, self.select_for_egress(batch, ctx, egress));
        }
        Ok(result)
    }

    fn merges_partial(&self) -> bool {
        true
    }

    /// HD's greedy objective is set-valued: the engine's generic reduce — greedy over the
    /// concatenation of per-sub-range truncations — can discard the globally disjoint
    /// candidate because its sub-range already had `k` locally better ones. Recomputing the
    /// greedy over the full merged batch makes the `|Φ| > threshold` split lossless (the
    /// partials carry no extra information for a global objective, so they are ignored),
    /// trading the hierarchical reduce's speedup for exactness.
    fn merge_partial(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
        _partials: &[SelectionResult],
    ) -> Option<Result<SelectionResult>> {
        Some(self.select(batch, ctx))
    }
}

/// A native link-avoidance algorithm: reject every candidate whose path traverses a link in
/// the avoid set, rank the rest by latency. This is the *semantic* of the per-round on-demand
/// algorithm that PD distributes (the distributable IRVM form is [`pd_round_program`]).
pub struct AvoidLinksAlgorithm {
    avoid: HashSet<(AsId, IfId)>,
    k: usize,
}

impl AvoidLinksAlgorithm {
    /// Creates the algorithm with the set of links to avoid.
    pub fn new(avoid: impl IntoIterator<Item = (AsId, IfId)>, k: usize) -> Self {
        AvoidLinksAlgorithm {
            avoid: avoid.into_iter().collect(),
            k,
        }
    }
}

impl RoutingAlgorithm for AvoidLinksAlgorithm {
    fn name(&self) -> &str {
        "avoid-links"
    }

    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        let mut result = SelectionResult::empty();
        for &egress in &ctx.egress_interfaces {
            let mut scored: Vec<(u64, usize)> = batch
                .candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| c.ingress != egress && !c.pcb.contains_as(ctx.local_as.id))
                .filter(|(_, c)| !c.pcb.link_keys().iter().any(|l| self.avoid.contains(l)))
                .map(|(i, c)| (ctx.metrics_at_egress(c, egress).latency.as_micros(), i))
                .collect();
            scored.sort();
            result.insert(
                egress,
                scored
                    .into_iter()
                    .take(self.k.min(ctx.max_selected))
                    .map(|(_, i)| i)
                    .collect(),
            );
        }
        Ok(result)
    }
}

/// Builds the IRVM program for one round of the **pull-based disjointness (PD)** workflow:
/// the origin AS wants a new path to the target that avoids every link of the paths it has
/// already discovered, so it originates on-demand, pull-based PCBs carrying this program
/// (§VIII-B of the paper).
pub fn pd_round_program(
    avoid: impl IntoIterator<Item = (AsId, IfId)>,
    max_selected: u32,
) -> Program {
    irec_irvm::programs::avoid_links(avoid.into_iter().collect(), max_selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{candidate, candidate_with_links, local_as};
    use irec_types::{AsId, InterfaceGroupId};

    fn ctx(node: &irec_topology::AsNode) -> AlgorithmContext<'_> {
        AlgorithmContext::new(node, vec![IfId(3)], 20)
    }

    #[test]
    fn hd_prefers_disjoint_paths_over_shorter_overlapping_ones() {
        let node = local_as();
        // Candidate 0: links (1,1),(2,1)      — 2 hops
        // Candidate 1: links (1,1),(2,2)      — shares (1,1) with candidate 0
        // Candidate 2: links (1,9),(3,1),(4,1) — fully disjoint from candidate 0, but longer
        let b = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            vec![
                candidate_with_links(1, &[(1, 1), (2, 1)], 1),
                candidate_with_links(1, &[(1, 1), (2, 2)], 1),
                candidate_with_links(1, &[(1, 9), (3, 1), (4, 1)], 1),
            ],
        );
        let r = HeuristicDisjointness::new(2)
            .select(&b, &ctx(&node))
            .unwrap();
        // First pick: shortest (candidate 0). Second pick: the disjoint candidate 2, despite
        // candidate 1 being shorter.
        assert_eq!(r.per_egress[&IfId(3)], vec![0, 2]);
    }

    #[test]
    fn hd_respects_budget_and_context_limit() {
        let node = local_as();
        let b = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            (0..6)
                .map(|i| candidate_with_links(1, &[(1, i + 1), (2, i + 1)], 1))
                .collect(),
        );
        let r = HeuristicDisjointness::new(4)
            .select(&b, &ctx(&node))
            .unwrap();
        assert_eq!(r.per_egress[&IfId(3)].len(), 4);
        let mut tight = ctx(&node);
        tight.max_selected = 2;
        let r2 = HeuristicDisjointness::new(4).select(&b, &tight).unwrap();
        assert_eq!(r2.per_egress[&IfId(3)].len(), 2);
    }

    #[test]
    fn hd_skips_ingress_equals_egress_and_loops() {
        let node = local_as();
        let own_as_loop = candidate(500, &[(10, 100)], 1); // origin is the local AS itself
        let from_egress = candidate_with_links(1, &[(1, 1)], 3); // arrived on if3
        let b = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            vec![own_as_loop, from_egress],
        );
        let r = HeuristicDisjointness::new(5)
            .select(&b, &ctx(&node))
            .unwrap();
        assert!(r.per_egress[&IfId(3)].is_empty());
    }

    #[test]
    fn hd_empty_batch() {
        let node = local_as();
        let b = CandidateBatch::new(AsId(1), InterfaceGroupId::DEFAULT, vec![]);
        let r = HeuristicDisjointness::new(5)
            .select(&b, &ctx(&node))
            .unwrap();
        assert!(r.per_egress[&IfId(3)].is_empty());
    }

    #[test]
    fn hd_merge_partial_equals_full_batch_selection() {
        let node = local_as();
        // Candidates 0/1 overlap heavily; candidate 2 is the globally disjoint one. Partials
        // that truncated it away must not matter: the merge recomputes over the full batch.
        let b = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            vec![
                candidate_with_links(1, &[(1, 1), (2, 1)], 1),
                candidate_with_links(1, &[(1, 1), (2, 2)], 1),
                candidate_with_links(1, &[(1, 9), (3, 1), (4, 1)], 1),
            ],
        );
        let hd = HeuristicDisjointness::new(2);
        assert!(hd.merges_partial());
        let mut truncated = SelectionResult::empty();
        truncated.insert(IfId(3), vec![0, 1]);
        let merged = hd
            .merge_partial(&b, &ctx(&node), &[truncated])
            .expect("HD is merge-aware")
            .unwrap();
        assert_eq!(merged, hd.select(&b, &ctx(&node)).unwrap());
        assert_eq!(merged.per_egress[&IfId(3)], vec![0, 2]);
    }

    #[test]
    fn avoid_links_filters_overlapping_candidates() {
        let node = local_as();
        let b = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            vec![
                candidate_with_links(1, &[(1, 1), (2, 1)], 1),
                candidate_with_links(1, &[(1, 2), (3, 1)], 1),
            ],
        );
        let alg = AvoidLinksAlgorithm::new([(AsId(2), IfId(1))], 20);
        let r = alg.select(&b, &ctx(&node)).unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![1]);
        assert_eq!(alg.name(), "avoid-links");
    }

    #[test]
    fn avoid_links_with_empty_set_orders_by_latency() {
        let node = local_as();
        let b = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            vec![candidate(1, &[(30, 100)], 1), candidate(1, &[(10, 100)], 1)],
        );
        let alg = AvoidLinksAlgorithm::new([], 20);
        let r = alg.select(&b, &ctx(&node)).unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![1, 0]);
    }

    #[test]
    fn pd_round_program_matches_native_semantics() {
        // The IRVM program generated for a PD round must reject exactly the candidates the
        // native AvoidLinksAlgorithm rejects.
        let avoid = vec![(AsId(2), IfId(1))];
        let program = pd_round_program(avoid.clone(), 20);
        assert_eq!(program.avoid_links, avoid);
        assert!(program.validate().is_ok());
        let interp =
            irec_irvm::Interpreter::new(program, irec_irvm::ExecutionLimits::ON_DEMAND_RAC)
                .unwrap();

        let overlapping = candidate_with_links(1, &[(1, 1), (2, 1)], 1);
        let disjoint = candidate_with_links(1, &[(1, 2), (3, 1)], 1);
        let views: Vec<irec_irvm::CandidateView> = [&overlapping, &disjoint]
            .iter()
            .enumerate()
            .map(|(i, c)| {
                irec_irvm::CandidateView::new(i as u64, c.received_metrics(), c.pcb.link_keys())
            })
            .collect();
        let selected = interp.select_best(&views);
        assert_eq!(selected, vec![1]);
    }
}
