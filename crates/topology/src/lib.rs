//! # irec-topology
//!
//! The AS-level Internet topology substrate used by the IREC reproduction.
//!
//! The paper evaluates IREC on a topology derived from the CAIDA geo-rel dataset: the 500
//! highest-degree ASes, more than 100 000 inter-domain links, AS business relationships, and
//! the geographic location of every inter-AS link (from which the propagation delay is
//! estimated via great-circle distance). That dataset is not redistributable here, so this
//! crate provides
//!
//! * a faithful **topology model** ([`Topology`], [`AsNode`], [`Interface`], [`Link`]):
//!   geolocated border interfaces, per-link bandwidth/latency, Gao–Rexford business
//!   relationships, points of presence (PoPs), and intra-AS crossing latencies derived from
//!   interface geolocation;
//! * a **synthetic Internet generator** ([`generator::TopologyGenerator`]) producing
//!   tiered, power-law-like topologies with multi-PoP ASes and parallel inter-AS links at
//!   different locations — the properties the paper's evaluation actually depends on
//!   (path diversity, geographic spread, relationship-constrained propagation);
//! * **interface groups** ([`ifgroups`]) built by geographic clustering with a configurable
//!   diameter (the paper evaluates 300 km and 2000 km), implementing §IV-D;
//! * a hand-construction [`builder::TopologyBuilder`] for tests and the paper's running
//!   examples (Fig. 1, Fig. 2, Fig. 3, Fig. 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod generator;
pub mod ifgroups;
pub mod model;
pub mod pop;

pub use builder::TopologyBuilder;
pub use generator::{GeneratorConfig, TopologyGenerator};
pub use ifgroups::{GroupingConfig, InterfaceGroups};
pub use model::{AsNode, Interface, Link, LinkEnd, Relationship, Tier, Topology};
pub use pop::PointOfPresence;
