//! A fluent builder for hand-constructed topologies, used by tests, examples and the
//! reproductions of the paper's running examples (Fig. 1–4).

use crate::model::{AsNode, Relationship, Tier, Topology};
use irec_types::{AsId, Bandwidth, GeoCoord, IfId, Latency, Result};
use std::collections::HashMap;

/// Fluent topology builder.
///
/// Interface ids are assigned automatically (per AS, starting at 1) unless specified; link
/// latencies can be given explicitly (as in the paper's figures, where every link adds a
/// round 10 ms) or derived from endpoint locations.
#[derive(Debug)]
pub struct TopologyBuilder {
    topology: Topology,
    next_ifid: HashMap<AsId, u32>,
    default_location: GeoCoord,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder {
            topology: Topology::new(),
            next_ifid: HashMap::new(),
            default_location: GeoCoord::new(0.0, 0.0),
        }
    }

    /// Adds an AS with the given tier.
    pub fn with_as(mut self, asn: u64, tier: Tier) -> Self {
        self.topology
            .add_as(AsNode::new(AsId(asn), tier))
            .expect("builder: duplicate AS");
        self
    }

    /// Adds several ASes at once, all tier-2.
    pub fn with_ases(mut self, asns: impl IntoIterator<Item = u64>) -> Self {
        for asn in asns {
            self.topology
                .add_as(AsNode::new(AsId(asn), Tier::Tier2))
                .expect("builder: duplicate AS");
        }
        self
    }

    fn alloc_if(&mut self, asn: AsId) -> IfId {
        let next = self.next_ifid.entry(asn).or_insert(1);
        let id = IfId(*next);
        *next += 1;
        id
    }

    /// Adds a symmetric peering link with an explicit latency and bandwidth.
    pub fn link(mut self, a: u64, b: u64, latency: Latency, bandwidth: Bandwidth) -> Self {
        self.add_link_internal(
            a,
            b,
            latency,
            bandwidth,
            Relationship::PeerToPeer,
            None,
            None,
        )
        .expect("builder: link failed");
        self
    }

    /// Adds a provider → customer link (`a` is the provider).
    pub fn provider_link(
        mut self,
        provider: u64,
        customer: u64,
        latency: Latency,
        bandwidth: Bandwidth,
    ) -> Self {
        self.add_link_internal(
            provider,
            customer,
            latency,
            bandwidth,
            Relationship::ProviderToCustomer,
            None,
            None,
        )
        .expect("builder: link failed");
        self
    }

    /// Adds a peering link with explicit endpoint locations (latency derived from geography).
    pub fn geo_link(
        mut self,
        a: u64,
        loc_a: GeoCoord,
        b: u64,
        loc_b: GeoCoord,
        bandwidth: Bandwidth,
    ) -> Self {
        let if_a = self.alloc_if(AsId(a));
        let if_b = self.alloc_if(AsId(b));
        self.topology
            .add_link(
                AsId(a),
                if_a,
                loc_a,
                AsId(b),
                if_b,
                loc_b,
                bandwidth,
                Relationship::PeerToPeer,
            )
            .expect("builder: geo link failed");
        self
    }

    // Private aggregation point for every public link-adding method; a parameter
    // struct here would just restate the builder's own fields.
    #[allow(clippy::too_many_arguments)]
    fn add_link_internal(
        &mut self,
        a: u64,
        b: u64,
        latency: Latency,
        bandwidth: Bandwidth,
        relationship: Relationship,
        loc_a: Option<GeoCoord>,
        loc_b: Option<GeoCoord>,
    ) -> Result<()> {
        let if_a = self.alloc_if(AsId(a));
        let if_b = self.alloc_if(AsId(b));
        self.topology.add_link_with_latency(
            AsId(a),
            if_a,
            loc_a.unwrap_or(self.default_location),
            AsId(b),
            if_b,
            loc_b.unwrap_or(self.default_location),
            bandwidth,
            latency,
            relationship,
        )?;
        Ok(())
    }

    /// Finalizes the topology.
    pub fn build(self) -> Topology {
        let t = self.topology;
        t.validate().expect("builder produced an invalid topology");
        t
    }
}

/// The example topology of the paper's Fig. 1.
///
/// Five ASes: a source `Src`, a destination `Dst`, an intermediate `X` on the direct path,
/// and `Y`, `Z` on a longer detour. Every link adds 10 ms of latency; bandwidths are chosen
/// such that
///
/// * the 3-hop path `Src → X → Dst` is the shortest/lowest-latency path (low bandwidth),
/// * the 4-hop path `Src → Y → Z → Dst` is the highest-bandwidth path (40 ms),
/// * the 3-hop path `Src → Y → Dst` is the highest-bandwidth path with latency ≤ 30 ms.
///
/// AS numbering: Src = 1, X = 2, Dst = 3, Y = 4, Z = 5.
pub fn figure1_topology() -> Topology {
    let ten_ms = Latency::from_millis(10);
    let mut topology = TopologyBuilder::new()
        .with_as(1, Tier::Tier2) // Src
        .with_as(2, Tier::Tier2) // X
        .with_as(3, Tier::Tier2) // Dst
        .with_as(4, Tier::Tier2) // Y
        .with_as(5, Tier::Tier2) // Z
        // Shortest path: Src - X - Dst, thin links (low bandwidth).
        .link(1, 2, ten_ms, Bandwidth::from_mbps(10))
        .link(2, 3, ten_ms, Bandwidth::from_mbps(10))
        // Medium path: Src - Y - Dst, medium bandwidth.
        .link(1, 4, ten_ms, Bandwidth::from_mbps(100))
        .link(4, 3, ten_ms, Bandwidth::from_mbps(100))
        // Widest path: Src - Y - Z - Dst, thick links.
        .link(4, 5, ten_ms, Bandwidth::from_gbps(1))
        .link(5, 3, ten_ms, Bandwidth::from_gbps(1))
        .build();
    // The figure abstracts AS-internal networks away: every link contributes exactly 10 ms,
    // so the three highlighted paths come out at the paper's round 20/30/40 ms numbers.
    for node in topology.ases.values_mut() {
        node.local_crossing_latency = Latency::ZERO;
    }
    topology
}

/// The AS ids used by [`figure1_topology`], for readability in tests and examples.
pub mod figure1 {
    use irec_types::AsId;
    /// The source AS of the paper's Fig. 1.
    pub const SRC: AsId = AsId(1);
    /// The intermediate AS on the short path.
    pub const X: AsId = AsId(2);
    /// The destination AS.
    pub const DST: AsId = AsId(3);
    /// The first AS of the detour.
    pub const Y: AsId = AsId(4);
    /// The second AS of the detour.
    pub const Z: AsId = AsId(5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_valid_topology() {
        let t = TopologyBuilder::new()
            .with_ases([1, 2, 3])
            .link(1, 2, Latency::from_millis(5), Bandwidth::from_mbps(100))
            .link(2, 3, Latency::from_millis(5), Bandwidth::from_mbps(100))
            .build();
        assert_eq!(t.num_ases(), 3);
        assert_eq!(t.num_links(), 2);
        assert!(t.validate().is_ok());
        assert!(t.is_connected());
    }

    #[test]
    fn interface_ids_allocated_per_as() {
        let t = TopologyBuilder::new()
            .with_ases([1, 2, 3])
            .link(1, 2, Latency::from_millis(5), Bandwidth::from_mbps(10))
            .link(1, 3, Latency::from_millis(5), Bandwidth::from_mbps(10))
            .build();
        let as1 = t.as_node(AsId(1)).unwrap();
        assert_eq!(as1.degree(), 2);
        assert!(as1.interfaces.contains_key(&IfId(1)));
        assert!(as1.interfaces.contains_key(&IfId(2)));
        let as2 = t.as_node(AsId(2)).unwrap();
        assert!(as2.interfaces.contains_key(&IfId(1)));
    }

    #[test]
    fn provider_link_sets_relationship() {
        let t = TopologyBuilder::new()
            .with_ases([1, 2])
            .provider_link(1, 2, Latency::from_millis(1), Bandwidth::from_gbps(1))
            .build();
        let link = t.link(irec_types::LinkId(0)).unwrap();
        assert_eq!(
            link.relationship_from(AsId(1)),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(
            link.relationship_from(AsId(2)),
            Some(Relationship::CustomerToProvider)
        );
    }

    #[test]
    fn geo_link_derives_latency() {
        let t = TopologyBuilder::new()
            .with_ases([1, 2])
            .geo_link(
                1,
                GeoCoord::new(47.37, 8.54),
                2,
                GeoCoord::new(40.71, -74.0),
                Bandwidth::from_gbps(1),
            )
            .build();
        let link = t.link(irec_types::LinkId(0)).unwrap();
        assert!(link.metrics.latency > Latency::from_millis(25));
    }

    #[test]
    fn figure1_has_expected_shape() {
        let t = figure1_topology();
        assert_eq!(t.num_ases(), 5);
        assert_eq!(t.num_links(), 6);
        assert!(t.is_connected());
        // Src has three neighbors? No: Src connects to X and Y only.
        assert_eq!(t.neighbors(figure1::SRC), vec![figure1::X, figure1::Y]);
        assert_eq!(
            t.neighbors(figure1::DST),
            vec![figure1::X, figure1::Y, figure1::Z]
        );
        // Every link has 10 ms latency.
        for link in t.links.values() {
            assert_eq!(link.metrics.latency, Latency::from_millis(10));
        }
    }
}
