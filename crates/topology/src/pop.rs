//! Points of presence (PoPs).
//!
//! The paper defines a PoP of an AS as "a geolocation where it has at least one inter-domain
//! link" and evaluates the minimum propagation delay between PoP pairs of different ASes
//! (Fig. 8a). This module derives the PoPs of each AS from the interface locations in a
//! [`Topology`] by clustering interfaces that are geographically close.

use crate::model::Topology;
use irec_types::{AsId, GeoCoord, IfId};
use std::collections::BTreeMap;

/// A point of presence: a geographic cluster of an AS's border interfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOfPresence {
    /// Owning AS.
    pub asn: AsId,
    /// Index of this PoP within the AS (dense, starting at 0).
    pub index: usize,
    /// Representative location (centroid of the member interfaces).
    pub location: GeoCoord,
    /// Interfaces located at this PoP.
    pub interfaces: Vec<IfId>,
}

/// Derives the PoPs of every AS by greedy clustering of interface locations.
///
/// Two interfaces belong to the same PoP when they are within `radius_km` of the PoP's
/// first (seed) interface. The default radius of 50 km treats a metro area as one PoP.
pub fn points_of_presence(
    topology: &Topology,
    radius_km: f64,
) -> BTreeMap<AsId, Vec<PointOfPresence>> {
    let mut out = BTreeMap::new();
    for (asn, node) in &topology.ases {
        let mut pops: Vec<PointOfPresence> = Vec::new();
        for (ifid, intf) in &node.interfaces {
            let mut assigned = false;
            for pop in pops.iter_mut() {
                let seed_loc = pop.location;
                if seed_loc.distance_km(&intf.location) <= radius_km {
                    pop.interfaces.push(*ifid);
                    assigned = true;
                    break;
                }
            }
            if !assigned {
                pops.push(PointOfPresence {
                    asn: *asn,
                    index: pops.len(),
                    location: intf.location,
                    interfaces: vec![*ifid],
                });
            }
        }
        // Recompute centroids now that membership is known.
        for pop in pops.iter_mut() {
            let n = pop.interfaces.len() as f64;
            let (mut lat, mut lon) = (0.0, 0.0);
            for ifid in &pop.interfaces {
                let loc = node.interfaces[ifid].location;
                lat += loc.lat;
                lon += loc.lon;
            }
            pop.location = GeoCoord::new(lat / n, lon / n);
        }
        out.insert(*asn, pops);
    }
    out
}

/// Default PoP clustering radius in kilometres (one metro area).
pub const DEFAULT_POP_RADIUS_KM: f64 = 50.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AsNode, Relationship, Tier};
    use irec_types::Bandwidth;

    fn topo_with_spread_as() -> Topology {
        let mut t = Topology::new();
        t.add_as(AsNode::new(AsId(1), Tier::Tier1)).unwrap();
        t.add_as(AsNode::new(AsId(2), Tier::Tier2)).unwrap();
        t.add_as(AsNode::new(AsId(3), Tier::Tier2)).unwrap();
        t.add_as(AsNode::new(AsId(4), Tier::Tier2)).unwrap();
        // AS1 interfaces: two in Zurich (same PoP), one in New York.
        t.add_link(
            AsId(1),
            IfId(1),
            GeoCoord::new(47.37, 8.54),
            AsId(2),
            IfId(1),
            GeoCoord::new(47.40, 8.60),
            Bandwidth::from_gbps(10),
            Relationship::ProviderToCustomer,
        )
        .unwrap();
        t.add_link(
            AsId(1),
            IfId(2),
            GeoCoord::new(47.39, 8.50),
            AsId(3),
            IfId(1),
            GeoCoord::new(47.45, 8.70),
            Bandwidth::from_gbps(10),
            Relationship::ProviderToCustomer,
        )
        .unwrap();
        t.add_link(
            AsId(1),
            IfId(3),
            GeoCoord::new(40.71, -74.00),
            AsId(4),
            IfId(1),
            GeoCoord::new(40.75, -73.95),
            Bandwidth::from_gbps(10),
            Relationship::ProviderToCustomer,
        )
        .unwrap();
        t
    }

    #[test]
    fn clusters_interfaces_by_location() {
        let t = topo_with_spread_as();
        let pops = points_of_presence(&t, DEFAULT_POP_RADIUS_KM);
        let as1 = &pops[&AsId(1)];
        assert_eq!(as1.len(), 2, "Zurich and New York PoPs expected");
        let zurich = as1.iter().find(|p| p.interfaces.len() == 2).unwrap();
        assert!(zurich.location.lat > 45.0);
        let nyc = as1.iter().find(|p| p.interfaces.len() == 1).unwrap();
        assert!(nyc.location.lon < -70.0);
    }

    #[test]
    fn every_interface_belongs_to_exactly_one_pop() {
        let t = topo_with_spread_as();
        let pops = points_of_presence(&t, DEFAULT_POP_RADIUS_KM);
        for (asn, node) in &t.ases {
            let pop_ifaces: Vec<IfId> = pops[asn]
                .iter()
                .flat_map(|p| p.interfaces.iter().copied())
                .collect();
            assert_eq!(pop_ifaces.len(), node.interfaces.len());
            let mut sorted = pop_ifaces.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), pop_ifaces.len(), "no duplicates");
        }
    }

    #[test]
    fn tiny_radius_gives_one_pop_per_interface() {
        let t = topo_with_spread_as();
        let pops = points_of_presence(&t, 0.001);
        assert_eq!(pops[&AsId(1)].len(), 3);
    }

    #[test]
    fn huge_radius_gives_single_pop() {
        let t = topo_with_spread_as();
        let pops = points_of_presence(&t, 50_000.0);
        assert_eq!(pops[&AsId(1)].len(), 1);
        assert_eq!(pops[&AsId(1)][0].interfaces.len(), 3);
    }

    #[test]
    fn pop_indices_are_dense() {
        let t = topo_with_spread_as();
        let pops = points_of_presence(&t, DEFAULT_POP_RADIUS_KM);
        for (_, as_pops) in pops.iter() {
            for (i, pop) in as_pops.iter().enumerate() {
                assert_eq!(pop.index, i);
            }
        }
    }
}
