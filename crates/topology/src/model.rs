//! The AS-level topology model.

use irec_types::{
    AsId, Bandwidth, GeoCoord, IfId, IrecError, Latency, LinkId, LinkMetrics, Result,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Business relationship of a link, from the perspective of the link's `a` endpoint.
///
/// The simulator uses Gao–Rexford export rules when propagating PCBs: routes learned from
/// providers or peers are only exported to customers; routes learned from customers are
/// exported to everyone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// `a` is the customer, `b` the provider.
    CustomerToProvider,
    /// `a` is the provider, `b` the customer.
    ProviderToCustomer,
    /// Settlement-free peering.
    PeerToPeer,
    /// Core (tier-1 mesh) link; treated like peering for export policy.
    Core,
}

impl Relationship {
    /// The same relationship seen from the other end of the link.
    pub fn reversed(self) -> Relationship {
        match self {
            Relationship::CustomerToProvider => Relationship::ProviderToCustomer,
            Relationship::ProviderToCustomer => Relationship::CustomerToProvider,
            Relationship::PeerToPeer => Relationship::PeerToPeer,
            Relationship::Core => Relationship::Core,
        }
    }

    /// Whether, seen from this side, the neighbor is a customer.
    pub fn neighbor_is_customer(self) -> bool {
        matches!(self, Relationship::ProviderToCustomer)
    }

    /// Whether, seen from this side, the neighbor is a provider.
    pub fn neighbor_is_provider(self) -> bool {
        matches!(self, Relationship::CustomerToProvider)
    }
}

/// Tier of an AS in the synthetic hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Global transit-free core AS.
    Tier1,
    /// Regional/national transit AS.
    Tier2,
    /// Stub / edge AS.
    Tier3,
}

/// One endpoint of an inter-domain link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkEnd {
    /// The AS owning this endpoint.
    pub asn: AsId,
    /// The border interface at this endpoint.
    pub interface: IfId,
}

impl LinkEnd {
    /// Creates a link end.
    pub const fn new(asn: AsId, interface: IfId) -> Self {
        Self { asn, interface }
    }
}

/// A border interface of an AS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Interface {
    /// Interface identifier, unique within its AS.
    pub id: IfId,
    /// Owning AS.
    pub owner: AsId,
    /// Geographic location of the border router hosting this interface.
    pub location: GeoCoord,
    /// The inter-domain link attached to this interface.
    pub link: LinkId,
}

/// An inter-domain link between two AS border interfaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Link identifier.
    pub id: LinkId,
    /// First endpoint.
    pub a: LinkEnd,
    /// Second endpoint.
    pub b: LinkEnd,
    /// Link performance metrics (propagation latency, capacity).
    pub metrics: LinkMetrics,
    /// Business relationship from the perspective of endpoint `a`.
    pub relationship: Relationship,
}

impl Link {
    /// Returns the endpoint belonging to `asn`, if any.
    pub fn end_of(&self, asn: AsId) -> Option<LinkEnd> {
        if self.a.asn == asn {
            Some(self.a)
        } else if self.b.asn == asn {
            Some(self.b)
        } else {
            None
        }
    }

    /// Returns the endpoint *not* belonging to `asn`, if `asn` is on the link.
    pub fn other_end(&self, asn: AsId) -> Option<LinkEnd> {
        if self.a.asn == asn {
            Some(self.b)
        } else if self.b.asn == asn {
            Some(self.a)
        } else {
            None
        }
    }

    /// The relationship seen from `asn`'s side of the link.
    pub fn relationship_from(&self, asn: AsId) -> Option<Relationship> {
        if self.a.asn == asn {
            Some(self.relationship)
        } else if self.b.asn == asn {
            Some(self.relationship.reversed())
        } else {
            None
        }
    }
}

/// An autonomous system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsNode {
    /// AS identifier.
    pub id: AsId,
    /// Hierarchy tier (used by the generator and by default policies).
    pub tier: Tier,
    /// Border interfaces of this AS, keyed by interface id.
    pub interfaces: BTreeMap<IfId, Interface>,
    /// Latency added when crossing this AS between two *co-located* interfaces
    /// (switching/queueing inside one PoP).
    pub local_crossing_latency: Latency,
}

impl AsNode {
    /// Creates an AS node with no interfaces yet.
    pub fn new(id: AsId, tier: Tier) -> Self {
        AsNode {
            id,
            tier,
            interfaces: BTreeMap::new(),
            local_crossing_latency: Latency::from_micros(200),
        }
    }

    /// Number of border interfaces (equals the number of attached inter-domain links).
    pub fn degree(&self) -> usize {
        self.interfaces.len()
    }

    /// Intra-AS crossing latency between two of this AS's interfaces.
    ///
    /// The crossing latency is the great-circle fibre delay between the interface locations
    /// plus a fixed local switching latency. This is the quantity used by optimization on
    /// extended paths (§IV-E of the paper): without it, an on-path AS cannot tell that two
    /// received paths ending at different ingress interfaces have different costs towards a
    /// given egress interface.
    pub fn intra_latency(&self, from: IfId, to: IfId) -> Result<Latency> {
        if from == to {
            return Ok(Latency::ZERO);
        }
        let a = self
            .interfaces
            .get(&from)
            .ok_or_else(|| IrecError::not_found(format!("{} has no interface {from}", self.id)))?;
        let b = self
            .interfaces
            .get(&to)
            .ok_or_else(|| IrecError::not_found(format!("{} has no interface {to}", self.id)))?;
        Ok(a.location.propagation_delay(&b.location) + self.local_crossing_latency)
    }

    /// Intra-AS crossing metrics between two interfaces (latency as above; the internal
    /// network is assumed not to be the bandwidth bottleneck).
    pub fn intra_metrics(&self, from: IfId, to: IfId) -> Result<LinkMetrics> {
        Ok(LinkMetrics::new(
            self.intra_latency(from, to)?,
            Bandwidth::MAX,
        ))
    }
}

/// The complete AS-level topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    /// All ASes, keyed by id.
    pub ases: BTreeMap<AsId, AsNode>,
    /// All inter-domain links, keyed by id.
    pub links: BTreeMap<LinkId, Link>,
    /// Adjacency index: for each AS, the ids of its attached links.
    #[serde(skip)]
    adjacency: HashMap<AsId, Vec<LinkId>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Number of ASes.
    pub fn num_ases(&self) -> usize {
        self.ases.len()
    }

    /// Number of inter-domain links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All AS ids in ascending order.
    pub fn as_ids(&self) -> Vec<AsId> {
        self.ases.keys().copied().collect()
    }

    /// Looks up an AS.
    pub fn as_node(&self, asn: AsId) -> Result<&AsNode> {
        self.ases
            .get(&asn)
            .ok_or_else(|| IrecError::not_found(format!("unknown {asn}")))
    }

    /// All link ids in ascending order.
    pub fn link_ids(&self) -> Vec<LinkId> {
        self.links.keys().copied().collect()
    }

    /// Looks up a link.
    pub fn link(&self, id: LinkId) -> Result<&Link> {
        self.links
            .get(&id)
            .ok_or_else(|| IrecError::not_found(format!("unknown {id}")))
    }

    /// Looks up an interface of an AS.
    pub fn interface(&self, asn: AsId, interface: IfId) -> Result<&Interface> {
        self.as_node(asn)?
            .interfaces
            .get(&interface)
            .ok_or_else(|| IrecError::not_found(format!("{asn} has no interface {interface}")))
    }

    /// The link attached to the given interface of an AS.
    pub fn link_at(&self, asn: AsId, interface: IfId) -> Result<&Link> {
        let intf = self.interface(asn, interface)?;
        self.link(intf.link)
    }

    /// The remote end `(AS, interface)` reached by leaving `asn` through `interface`.
    pub fn neighbor_of(&self, asn: AsId, interface: IfId) -> Result<LinkEnd> {
        let link = self.link_at(asn, interface)?;
        link.other_end(asn)
            .ok_or_else(|| IrecError::internal(format!("link {} not attached to {asn}", link.id)))
    }

    /// Ids of all links attached to `asn`.
    pub fn links_of(&self, asn: AsId) -> Vec<LinkId> {
        self.adjacency.get(&asn).cloned().unwrap_or_default()
    }

    /// Visits every neighbor AS of `asn` without allocating. Neighbors connected by
    /// parallel links are visited once per link — callers that need uniqueness (e.g. the
    /// simulation's reachability BFS, which dedups via its visited set) must tolerate
    /// repeats; use [`Topology::neighbors`] for a deduplicated list.
    pub fn for_each_neighbor(&self, asn: AsId, mut f: impl FnMut(AsId)) {
        if let Some(links) = self.adjacency.get(&asn) {
            for lid in links {
                if let Some(end) = self.links.get(lid).and_then(|l| l.other_end(asn)) {
                    f(end.asn);
                }
            }
        }
    }

    /// All neighbor ASes of `asn` (deduplicated, order unspecified).
    pub fn neighbors(&self, asn: AsId) -> Vec<AsId> {
        let mut out: Vec<AsId> = self
            .links_of(asn)
            .into_iter()
            .filter_map(|lid| self.links.get(&lid))
            .filter_map(|l| l.other_end(asn))
            .map(|e| e.asn)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Adds an AS. Errors if it already exists.
    pub fn add_as(&mut self, node: AsNode) -> Result<()> {
        if self.ases.contains_key(&node.id) {
            return Err(IrecError::config(format!("{} already exists", node.id)));
        }
        self.adjacency.entry(node.id).or_default();
        self.ases.insert(node.id, node);
        Ok(())
    }

    /// Adds a link between two existing ASes, creating the border interfaces at both ends.
    ///
    /// Returns the link id. `if_a`/`if_b` must be unused interface ids at the respective AS.
    #[allow(clippy::too_many_arguments)]
    pub fn add_link(
        &mut self,
        a: AsId,
        if_a: IfId,
        loc_a: GeoCoord,
        b: AsId,
        if_b: IfId,
        loc_b: GeoCoord,
        bandwidth: Bandwidth,
        relationship: Relationship,
    ) -> Result<LinkId> {
        if a == b {
            return Err(IrecError::config("self-links are not allowed"));
        }
        if !self.ases.contains_key(&a) || !self.ases.contains_key(&b) {
            return Err(IrecError::not_found("both link ends must be existing ASes"));
        }
        if self.ases[&a].interfaces.contains_key(&if_a) {
            return Err(IrecError::config(format!(
                "{a} already has interface {if_a}"
            )));
        }
        if self.ases[&b].interfaces.contains_key(&if_b) {
            return Err(IrecError::config(format!(
                "{b} already has interface {if_b}"
            )));
        }
        if if_a.is_none() || if_b.is_none() {
            return Err(IrecError::config("interface id 0 is reserved"));
        }

        let id = LinkId(self.links.len() as u64);
        let latency = loc_a.propagation_delay(&loc_b);
        let link = Link {
            id,
            a: LinkEnd::new(a, if_a),
            b: LinkEnd::new(b, if_b),
            metrics: LinkMetrics::new(latency, bandwidth),
            relationship,
        };

        self.ases
            .get_mut(&a)
            .expect("checked above")
            .interfaces
            .insert(
                if_a,
                Interface {
                    id: if_a,
                    owner: a,
                    location: loc_a,
                    link: id,
                },
            );
        self.ases
            .get_mut(&b)
            .expect("checked above")
            .interfaces
            .insert(
                if_b,
                Interface {
                    id: if_b,
                    owner: b,
                    location: loc_b,
                    link: id,
                },
            );
        self.adjacency.entry(a).or_default().push(id);
        self.adjacency.entry(b).or_default().push(id);
        self.links.insert(id, link);
        Ok(id)
    }

    /// Adds a link with an explicit latency override instead of the geo-derived one.
    #[allow(clippy::too_many_arguments)]
    pub fn add_link_with_latency(
        &mut self,
        a: AsId,
        if_a: IfId,
        loc_a: GeoCoord,
        b: AsId,
        if_b: IfId,
        loc_b: GeoCoord,
        bandwidth: Bandwidth,
        latency: Latency,
        relationship: Relationship,
    ) -> Result<LinkId> {
        let id = self.add_link(a, if_a, loc_a, b, if_b, loc_b, bandwidth, relationship)?;
        self.links
            .get_mut(&id)
            .expect("link just inserted")
            .metrics
            .latency = latency;
        Ok(id)
    }

    /// Rebuilds the adjacency index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.adjacency.clear();
        for asn in self.ases.keys() {
            self.adjacency.entry(*asn).or_default();
        }
        for (id, link) in &self.links {
            self.adjacency.entry(link.a.asn).or_default().push(*id);
            self.adjacency.entry(link.b.asn).or_default().push(*id);
        }
    }

    /// Validates structural invariants: every interface references an existing link that is
    /// attached to its owner, and every link's interfaces exist.
    pub fn validate(&self) -> Result<()> {
        for (asn, node) in &self.ases {
            if node.id != *asn {
                return Err(IrecError::internal("AS map key does not match node id"));
            }
            for (ifid, intf) in &node.interfaces {
                if intf.id != *ifid || intf.owner != *asn {
                    return Err(IrecError::internal("interface key/owner mismatch"));
                }
                let link = self.link(intf.link)?;
                if link.end_of(*asn).map(|e| e.interface) != Some(*ifid) {
                    return Err(IrecError::internal(format!(
                        "interface {asn}/{ifid} references link {} which is not attached to it",
                        intf.link
                    )));
                }
            }
        }
        for (lid, link) in &self.links {
            if link.id != *lid {
                return Err(IrecError::internal("link map key does not match link id"));
            }
            self.interface(link.a.asn, link.a.interface)?;
            self.interface(link.b.asn, link.b.interface)?;
            if link.a.asn == link.b.asn {
                return Err(IrecError::internal("self-link detected"));
            }
        }
        Ok(())
    }

    /// Whether the AS-level graph is connected (ignoring relationships).
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.ases.keys().next() else {
            return true;
        };
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![start];
        visited.insert(start);
        while let Some(asn) = stack.pop() {
            for n in self.neighbors(asn) {
                if visited.insert(n) {
                    stack.push(n);
                }
            }
        }
        visited.len() == self.ases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord(lat: f64, lon: f64) -> GeoCoord {
        GeoCoord::new(lat, lon)
    }

    fn two_as_topology() -> Topology {
        let mut t = Topology::new();
        t.add_as(AsNode::new(AsId(1), Tier::Tier1)).unwrap();
        t.add_as(AsNode::new(AsId(2), Tier::Tier2)).unwrap();
        t.add_link(
            AsId(1),
            IfId(1),
            coord(47.0, 8.0),
            AsId(2),
            IfId(1),
            coord(48.0, 9.0),
            Bandwidth::from_gbps(10),
            Relationship::ProviderToCustomer,
        )
        .unwrap();
        t
    }

    #[test]
    fn add_as_and_link() {
        let t = two_as_topology();
        assert_eq!(t.num_ases(), 2);
        assert_eq!(t.num_links(), 1);
        assert!(t.validate().is_ok());
        assert!(t.is_connected());
    }

    #[test]
    fn duplicate_as_rejected() {
        let mut t = Topology::new();
        t.add_as(AsNode::new(AsId(1), Tier::Tier3)).unwrap();
        assert!(t.add_as(AsNode::new(AsId(1), Tier::Tier3)).is_err());
    }

    #[test]
    fn self_link_rejected() {
        let mut t = Topology::new();
        t.add_as(AsNode::new(AsId(1), Tier::Tier3)).unwrap();
        let err = t.add_link(
            AsId(1),
            IfId(1),
            coord(0.0, 0.0),
            AsId(1),
            IfId(2),
            coord(0.0, 0.0),
            Bandwidth::from_mbps(1),
            Relationship::PeerToPeer,
        );
        assert!(err.is_err());
    }

    #[test]
    fn reserved_interface_zero_rejected() {
        let mut t = Topology::new();
        t.add_as(AsNode::new(AsId(1), Tier::Tier3)).unwrap();
        t.add_as(AsNode::new(AsId(2), Tier::Tier3)).unwrap();
        assert!(t
            .add_link(
                AsId(1),
                IfId(0),
                coord(0.0, 0.0),
                AsId(2),
                IfId(1),
                coord(0.0, 0.0),
                Bandwidth::from_mbps(1),
                Relationship::PeerToPeer,
            )
            .is_err());
    }

    #[test]
    fn duplicate_interface_rejected() {
        let mut t = two_as_topology();
        let err = t.add_link(
            AsId(1),
            IfId(1),
            coord(0.0, 0.0),
            AsId(2),
            IfId(2),
            coord(0.0, 0.0),
            Bandwidth::from_mbps(1),
            Relationship::PeerToPeer,
        );
        assert!(err.is_err());
    }

    #[test]
    fn neighbor_lookup() {
        let t = two_as_topology();
        let n = t.neighbor_of(AsId(1), IfId(1)).unwrap();
        assert_eq!(n.asn, AsId(2));
        assert_eq!(n.interface, IfId(1));
        assert_eq!(t.neighbors(AsId(1)), vec![AsId(2)]);
    }

    #[test]
    fn relationship_perspective() {
        let t = two_as_topology();
        let link = t.link(LinkId(0)).unwrap();
        assert_eq!(
            link.relationship_from(AsId(1)),
            Some(Relationship::ProviderToCustomer)
        );
        assert_eq!(
            link.relationship_from(AsId(2)),
            Some(Relationship::CustomerToProvider)
        );
        assert_eq!(link.relationship_from(AsId(3)), None);
        assert!(Relationship::ProviderToCustomer.neighbor_is_customer());
        assert!(Relationship::CustomerToProvider.neighbor_is_provider());
        assert_eq!(
            Relationship::PeerToPeer.reversed(),
            Relationship::PeerToPeer
        );
        assert_eq!(Relationship::Core.reversed(), Relationship::Core);
    }

    #[test]
    fn link_latency_derived_from_geo() {
        let t = two_as_topology();
        let link = t.link(LinkId(0)).unwrap();
        // Zurich-ish to Munich-ish is on the order of 100-200 km => sub-millisecond to ~1ms.
        assert!(link.metrics.latency > Latency::ZERO);
        assert!(link.metrics.latency < Latency::from_millis(5));
    }

    #[test]
    fn explicit_latency_override() {
        let mut t = Topology::new();
        t.add_as(AsNode::new(AsId(1), Tier::Tier1)).unwrap();
        t.add_as(AsNode::new(AsId(2), Tier::Tier1)).unwrap();
        t.add_link_with_latency(
            AsId(1),
            IfId(1),
            coord(0.0, 0.0),
            AsId(2),
            IfId(1),
            coord(0.0, 0.0),
            Bandwidth::from_gbps(1),
            Latency::from_millis(10),
            Relationship::Core,
        )
        .unwrap();
        assert_eq!(
            t.link(LinkId(0)).unwrap().metrics.latency,
            Latency::from_millis(10)
        );
    }

    #[test]
    fn intra_as_latency() {
        let mut t = Topology::new();
        t.add_as(AsNode::new(AsId(1), Tier::Tier1)).unwrap();
        t.add_as(AsNode::new(AsId(2), Tier::Tier2)).unwrap();
        t.add_as(AsNode::new(AsId(3), Tier::Tier2)).unwrap();
        // AS1 has two interfaces far apart (Zurich and New York).
        t.add_link(
            AsId(1),
            IfId(1),
            coord(47.37, 8.54),
            AsId(2),
            IfId(1),
            coord(47.5, 8.6),
            Bandwidth::from_gbps(1),
            Relationship::ProviderToCustomer,
        )
        .unwrap();
        t.add_link(
            AsId(1),
            IfId(2),
            coord(40.71, -74.0),
            AsId(3),
            IfId(1),
            coord(40.8, -74.1),
            Bandwidth::from_gbps(1),
            Relationship::ProviderToCustomer,
        )
        .unwrap();
        let node = t.as_node(AsId(1)).unwrap();
        let cross = node.intra_latency(IfId(1), IfId(2)).unwrap();
        // ~6300 km at 200 km/ms => > 30 ms.
        assert!(cross > Latency::from_millis(25), "cross = {cross}");
        assert_eq!(node.intra_latency(IfId(1), IfId(1)).unwrap(), Latency::ZERO);
        assert!(node.intra_latency(IfId(1), IfId(9)).is_err());
        let metrics = node.intra_metrics(IfId(1), IfId(2)).unwrap();
        assert_eq!(metrics.bandwidth, Bandwidth::MAX);
    }

    #[test]
    fn rebuild_index_restores_adjacency() {
        let mut t = two_as_topology();
        t.adjacency.clear();
        assert!(t.links_of(AsId(1)).is_empty());
        t.rebuild_index();
        assert_eq!(t.links_of(AsId(1)).len(), 1);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn disconnected_topology_detected() {
        let mut t = two_as_topology();
        t.add_as(AsNode::new(AsId(99), Tier::Tier3)).unwrap();
        assert!(!t.is_connected());
    }

    #[test]
    fn empty_topology_is_connected_and_valid() {
        let t = Topology::new();
        assert!(t.is_connected());
        assert!(t.validate().is_ok());
    }
}
