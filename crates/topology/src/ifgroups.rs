//! Interface groups (§IV-D of the paper): flexible optimization granularity.
//!
//! Origin ASes create interface groups, assign each border interface to a group, and encode
//! the group id in the PCBs they originate from the member interfaces. Downstream ASes then
//! optimize per `(origin AS, interface group)` instead of per origin AS (too coarse) or per
//! interface (too expensive).
//!
//! The paper's evaluation defines groups "based on the routers' geographic locations" with a
//! maximum distance between any two member interfaces of 300 km (DOB300) or 2000 km
//! (DOB2000). [`InterfaceGroups::by_geography`] implements exactly that: greedy clustering
//! with a hard diameter bound.

use crate::model::{AsNode, Topology};
use irec_types::{AsId, IfId, InterfaceGroupId, IrecError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of interface-group construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupingConfig {
    /// Maximum great-circle distance in km between any two interfaces of the same group.
    pub max_diameter_km: f64,
}

impl GroupingConfig {
    /// The 300 km configuration of the paper (DOB300).
    pub const KM_300: GroupingConfig = GroupingConfig {
        max_diameter_km: 300.0,
    };
    /// The 2000 km configuration of the paper (DOB2000).
    pub const KM_2000: GroupingConfig = GroupingConfig {
        max_diameter_km: 2000.0,
    };
}

/// The interface-group assignment of a single AS.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InterfaceGroups {
    /// Group membership: group id -> member interfaces.
    groups: BTreeMap<InterfaceGroupId, Vec<IfId>>,
    /// Reverse index: interface -> group.
    assignment: BTreeMap<IfId, InterfaceGroupId>,
}

impl InterfaceGroups {
    /// The trivial grouping: all interfaces in the single default group.
    ///
    /// This is what an AS that does not opt into flexible granularity uses; optimization then
    /// happens per origin AS, exactly like legacy SCION.
    pub fn single_group(node: &AsNode) -> Self {
        let mut groups = InterfaceGroups::default();
        for ifid in node.interfaces.keys() {
            groups.assign(*ifid, InterfaceGroupId::DEFAULT);
        }
        groups
    }

    /// One group per interface: the finest (and most expensive) granularity.
    pub fn per_interface(node: &AsNode) -> Self {
        let mut groups = InterfaceGroups::default();
        for (i, ifid) in node.interfaces.keys().enumerate() {
            groups.assign(*ifid, InterfaceGroupId(i as u32));
        }
        groups
    }

    /// Geographic clustering with a hard diameter bound (greedy first-fit).
    ///
    /// Interfaces are scanned in id order; each is placed into the first existing group where
    /// its distance to *every* member stays within the bound, otherwise a new group is
    /// created. The result therefore always satisfies the diameter invariant.
    pub fn by_geography(node: &AsNode, config: GroupingConfig) -> Self {
        let mut groups = InterfaceGroups::default();
        let mut next_group: u32 = 0;
        for (ifid, intf) in &node.interfaces {
            let mut chosen: Option<InterfaceGroupId> = None;
            'search: for (gid, members) in &groups.groups {
                for member in members {
                    let other = &node.interfaces[member];
                    if intf.location.distance_km(&other.location) > config.max_diameter_km {
                        continue 'search;
                    }
                }
                chosen = Some(*gid);
                break;
            }
            let gid = chosen.unwrap_or_else(|| {
                let gid = InterfaceGroupId(next_group);
                next_group += 1;
                gid
            });
            groups.assign(*ifid, gid);
            next_group = next_group.max(gid.value() + 1);
        }
        groups
    }

    /// Assigns (or re-assigns) an interface to a group.
    pub fn assign(&mut self, interface: IfId, group: InterfaceGroupId) {
        if let Some(old) = self.assignment.insert(interface, group) {
            if let Some(members) = self.groups.get_mut(&old) {
                members.retain(|m| *m != interface);
                if members.is_empty() {
                    self.groups.remove(&old);
                }
            }
        }
        self.groups.entry(group).or_default().push(interface);
    }

    /// The group of an interface, if assigned.
    pub fn group_of(&self, interface: IfId) -> Option<InterfaceGroupId> {
        self.assignment.get(&interface).copied()
    }

    /// The member interfaces of a group.
    pub fn members(&self, group: InterfaceGroupId) -> &[IfId] {
        self.groups.get(&group).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All group ids, ascending.
    pub fn group_ids(&self) -> Vec<InterfaceGroupId> {
        self.groups.keys().copied().collect()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of assigned interfaces.
    pub fn num_interfaces(&self) -> usize {
        self.assignment.len()
    }

    /// Checks the diameter invariant against the interface locations in `node`.
    pub fn validate_diameter(&self, node: &AsNode, config: GroupingConfig) -> Result<()> {
        for (gid, members) in &self.groups {
            for (i, a) in members.iter().enumerate() {
                for b in &members[i + 1..] {
                    let la = node
                        .interfaces
                        .get(a)
                        .ok_or_else(|| IrecError::not_found(format!("interface {a} missing")))?
                        .location;
                    let lb = node
                        .interfaces
                        .get(b)
                        .ok_or_else(|| IrecError::not_found(format!("interface {b} missing")))?
                        .location;
                    if la.distance_km(&lb) > config.max_diameter_km {
                        return Err(IrecError::config(format!(
                            "group {gid} violates diameter bound between {a} and {b}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builds geographic interface groups for every AS in the topology.
pub fn groups_for_topology(
    topology: &Topology,
    config: GroupingConfig,
) -> BTreeMap<AsId, InterfaceGroups> {
    topology
        .ases
        .iter()
        .map(|(asn, node)| (*asn, InterfaceGroups::by_geography(node, config)))
        .collect()
}

/// Builds the trivial single-group assignment for every AS (legacy granularity).
pub fn single_groups_for_topology(topology: &Topology) -> BTreeMap<AsId, InterfaceGroups> {
    topology
        .ases
        .iter()
        .map(|(asn, node)| (*asn, InterfaceGroups::single_group(node)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AsNode, Relationship, Tier};
    use irec_types::{Bandwidth, GeoCoord};

    /// AS 1 with four interfaces: two in Zurich, one in Frankfurt (~300 km), one in New York.
    fn spread_topology() -> Topology {
        let mut t = Topology::new();
        t.add_as(AsNode::new(AsId(1), Tier::Tier1)).unwrap();
        for peer in 2..=5u64 {
            t.add_as(AsNode::new(AsId(peer), Tier::Tier3)).unwrap();
        }
        let locs = [
            GeoCoord::new(47.37, 8.54),   // Zurich
            GeoCoord::new(47.39, 8.51),   // Zurich
            GeoCoord::new(50.11, 8.68),   // Frankfurt (~304 km from Zurich)
            GeoCoord::new(40.71, -74.00), // New York
        ];
        for (i, loc) in locs.iter().enumerate() {
            t.add_link(
                AsId(1),
                IfId(i as u32 + 1),
                *loc,
                AsId(i as u64 + 2),
                IfId(1),
                GeoCoord::new(loc.lat + 0.1, loc.lon + 0.1),
                Bandwidth::from_gbps(10),
                Relationship::ProviderToCustomer,
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn single_group_covers_all_interfaces() {
        let t = spread_topology();
        let node = t.as_node(AsId(1)).unwrap();
        let g = InterfaceGroups::single_group(node);
        assert_eq!(g.num_groups(), 1);
        assert_eq!(g.num_interfaces(), 4);
        assert_eq!(g.members(InterfaceGroupId::DEFAULT).len(), 4);
    }

    #[test]
    fn per_interface_gives_one_group_each() {
        let t = spread_topology();
        let node = t.as_node(AsId(1)).unwrap();
        let g = InterfaceGroups::per_interface(node);
        assert_eq!(g.num_groups(), 4);
        for gid in g.group_ids() {
            assert_eq!(g.members(gid).len(), 1);
        }
    }

    #[test]
    fn geographic_grouping_300km() {
        let t = spread_topology();
        let node = t.as_node(AsId(1)).unwrap();
        let g = InterfaceGroups::by_geography(node, GroupingConfig::KM_300);
        // Zurich pair together; Frankfurt may or may not join them (304 km > 300 km, so it
        // must not); New York separate.
        assert_eq!(g.num_groups(), 3, "groups: {:?}", g);
        assert!(g.validate_diameter(node, GroupingConfig::KM_300).is_ok());
        assert_eq!(g.group_of(IfId(1)), g.group_of(IfId(2)));
        assert_ne!(g.group_of(IfId(1)), g.group_of(IfId(3)));
        assert_ne!(g.group_of(IfId(1)), g.group_of(IfId(4)));
    }

    #[test]
    fn geographic_grouping_2000km() {
        let t = spread_topology();
        let node = t.as_node(AsId(1)).unwrap();
        let g = InterfaceGroups::by_geography(node, GroupingConfig::KM_2000);
        // Zurich + Frankfurt merge; New York stays separate.
        assert_eq!(g.num_groups(), 2);
        assert!(g.validate_diameter(node, GroupingConfig::KM_2000).is_ok());
    }

    #[test]
    fn coarser_config_never_more_groups() {
        let t = spread_topology();
        let node = t.as_node(AsId(1)).unwrap();
        let fine = InterfaceGroups::by_geography(node, GroupingConfig::KM_300);
        let coarse = InterfaceGroups::by_geography(node, GroupingConfig::KM_2000);
        assert!(coarse.num_groups() <= fine.num_groups());
    }

    #[test]
    fn reassignment_moves_interface() {
        let t = spread_topology();
        let node = t.as_node(AsId(1)).unwrap();
        let mut g = InterfaceGroups::single_group(node);
        g.assign(IfId(4), InterfaceGroupId(7));
        assert_eq!(g.group_of(IfId(4)), Some(InterfaceGroupId(7)));
        assert_eq!(g.members(InterfaceGroupId::DEFAULT).len(), 3);
        assert_eq!(g.num_groups(), 2);
        // Moving the last member of a group removes the group.
        g.assign(IfId(4), InterfaceGroupId::DEFAULT);
        assert_eq!(g.num_groups(), 1);
    }

    #[test]
    fn validate_diameter_detects_violations() {
        let t = spread_topology();
        let node = t.as_node(AsId(1)).unwrap();
        let mut g = InterfaceGroups::default();
        g.assign(IfId(1), InterfaceGroupId(0)); // Zurich
        g.assign(IfId(4), InterfaceGroupId(0)); // New York
        assert!(g.validate_diameter(node, GroupingConfig::KM_300).is_err());
    }

    #[test]
    fn topology_wide_helpers() {
        let t = spread_topology();
        let per_as = groups_for_topology(&t, GroupingConfig::KM_300);
        assert_eq!(per_as.len(), t.num_ases());
        let single = single_groups_for_topology(&t);
        for (asn, g) in &single {
            assert_eq!(
                g.num_groups(),
                if t.as_node(*asn).unwrap().degree() > 0 {
                    1
                } else {
                    0
                }
            );
        }
    }

    #[test]
    fn unknown_interface_has_no_group() {
        let t = spread_topology();
        let node = t.as_node(AsId(1)).unwrap();
        let g = InterfaceGroups::single_group(node);
        assert_eq!(g.group_of(IfId(99)), None);
        assert!(g.members(InterfaceGroupId(42)).is_empty());
    }
}
