//! Synthetic Internet-like topology generator (the CAIDA geo-rel substitute).
//!
//! The paper's simulation topology is the 500 highest-degree ASes of the CAIDA geo-rel
//! dataset with >100 000 geolocated inter-domain links. What the evaluation actually depends
//! on is:
//!
//! 1. a tiered, power-law-like AS hierarchy with valley-free business relationships,
//! 2. ASes with multiple, geographically spread points of presence,
//! 3. many *parallel* inter-AS links at different locations (this is what creates the path
//!    diversity that multi-criteria optimization exploits and what makes per-interface-group
//!    optimization matter),
//! 4. per-link propagation delays derived from great-circle distances, and
//! 5. heterogeneous link capacities.
//!
//! [`TopologyGenerator`] produces topologies with exactly these properties, deterministically
//! from a seed.

use crate::model::{AsNode, Relationship, Tier, Topology};
use irec_types::{AsId, Bandwidth, GeoCoord, IfId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A world city used as a PoP location. The list approximates the geographic spread of
/// Internet exchange points.
const CITIES: &[(&str, f64, f64)] = &[
    ("Zurich", 47.38, 8.54),
    ("Frankfurt", 50.11, 8.68),
    ("Amsterdam", 52.37, 4.90),
    ("London", 51.51, -0.13),
    ("Paris", 48.86, 2.35),
    ("Madrid", 40.42, -3.70),
    ("Milan", 45.46, 9.19),
    ("Stockholm", 59.33, 18.07),
    ("Warsaw", 52.23, 21.01),
    ("Vienna", 48.21, 16.37),
    ("Moscow", 55.76, 37.62),
    ("Istanbul", 41.01, 28.98),
    ("New York", 40.71, -74.01),
    ("Ashburn", 39.04, -77.49),
    ("Chicago", 41.88, -87.63),
    ("Dallas", 32.78, -96.80),
    ("Miami", 25.76, -80.19),
    ("Los Angeles", 34.05, -118.24),
    ("San Jose", 37.34, -121.89),
    ("Seattle", 47.61, -122.33),
    ("Toronto", 43.65, -79.38),
    ("Mexico City", 19.43, -99.13),
    ("Sao Paulo", -23.55, -46.63),
    ("Buenos Aires", -34.60, -58.38),
    ("Santiago", -33.45, -70.67),
    ("Bogota", 4.71, -74.07),
    ("Johannesburg", -26.20, 28.05),
    ("Lagos", 6.52, 3.38),
    ("Nairobi", -1.29, 36.82),
    ("Cairo", 30.04, 31.24),
    ("Dubai", 25.20, 55.27),
    ("Mumbai", 19.08, 72.88),
    ("Chennai", 13.08, 80.27),
    ("Singapore", 1.35, 103.82),
    ("Jakarta", -6.21, 106.85),
    ("Hong Kong", 22.32, 114.17),
    ("Tokyo", 35.68, 139.65),
    ("Osaka", 34.69, 135.50),
    ("Seoul", 37.57, 126.98),
    ("Taipei", 25.03, 121.57),
    ("Sydney", -33.87, 151.21),
    ("Melbourne", -37.81, 144.96),
    ("Auckland", -36.85, 174.76),
    ("Honolulu", 21.31, -157.86),
];

/// Parameters of the synthetic topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Total number of ASes.
    pub num_ases: usize,
    /// PRNG seed; the same config always produces the same topology.
    pub seed: u64,
    /// Fraction of ASes in tier 1 (global core).
    pub tier1_fraction: f64,
    /// Fraction of ASes in tier 2 (transit); the rest are tier-3 stubs.
    pub tier2_fraction: f64,
    /// Number of PoP locations per tier-1 AS (min, max).
    pub tier1_pops: (usize, usize),
    /// Number of PoP locations per tier-2 AS (min, max).
    pub tier2_pops: (usize, usize),
    /// Number of PoP locations per tier-3 AS (min, max).
    pub tier3_pops: (usize, usize),
    /// Number of provider links per tier-2 AS (min, max).
    pub tier2_providers: (usize, usize),
    /// Number of provider links per tier-3 AS (min, max).
    pub tier3_providers: (usize, usize),
    /// Number of lateral peering links per tier-2 AS (min, max).
    pub tier2_peers: (usize, usize),
    /// How many parallel links (at distinct PoP pairs) each logical adjacency gets (min, max).
    pub parallel_links: (usize, usize),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            num_ases: 100,
            seed: 7,
            tier1_fraction: 0.06,
            tier2_fraction: 0.44,
            tier1_pops: (6, 12),
            tier2_pops: (2, 6),
            tier3_pops: (1, 3),
            tier2_providers: (2, 4),
            tier3_providers: (1, 3),
            tier2_peers: (1, 4),
            parallel_links: (1, 3),
        }
    }
}

impl GeneratorConfig {
    /// A small topology suitable for unit tests (fast, still connected and multi-tier).
    pub fn tiny(seed: u64) -> Self {
        GeneratorConfig {
            num_ases: 20,
            seed,
            ..Default::default()
        }
    }

    /// The paper-scale configuration: 500 ASes with dense parallel links.
    pub fn paper_scale(seed: u64) -> Self {
        GeneratorConfig {
            num_ases: 500,
            seed,
            tier1_fraction: 0.04,
            tier2_fraction: 0.40,
            tier1_pops: (10, 20),
            tier2_pops: (3, 8),
            tier3_pops: (1, 4),
            tier2_providers: (2, 5),
            tier3_providers: (1, 3),
            tier2_peers: (2, 6),
            parallel_links: (2, 5),
        }
    }
}

/// Deterministic synthetic topology generator.
#[derive(Debug)]
pub struct TopologyGenerator {
    config: GeneratorConfig,
}

impl TopologyGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        TopologyGenerator { config }
    }

    /// Generates the topology.
    pub fn generate(&self) -> Topology {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut topology = Topology::new();

        let num_t1 = ((cfg.num_ases as f64 * cfg.tier1_fraction).round() as usize).max(2);
        let num_t2 = ((cfg.num_ases as f64 * cfg.tier2_fraction).round() as usize)
            .max(2)
            .min(cfg.num_ases.saturating_sub(num_t1));
        let num_t3 = cfg.num_ases.saturating_sub(num_t1 + num_t2);

        // Assign tiers and PoP locations.
        let mut pops: HashMap<AsId, Vec<GeoCoord>> = HashMap::new();
        let mut next_if: HashMap<AsId, u32> = HashMap::new();
        let mut tier_of: HashMap<AsId, Tier> = HashMap::new();

        let add_as = |topology: &mut Topology,
                      rng: &mut StdRng,
                      id: u64,
                      tier: Tier,
                      pop_range: (usize, usize),
                      pops: &mut HashMap<AsId, Vec<GeoCoord>>,
                      tier_of: &mut HashMap<AsId, Tier>| {
            let asn = AsId(id);
            topology
                .add_as(AsNode::new(asn, tier))
                .expect("unique AS id");
            let n_pops = rng.gen_range(pop_range.0..=pop_range.1).min(CITIES.len());
            let mut cities: Vec<usize> = (0..CITIES.len()).collect();
            cities.shuffle(rng);
            let locations = cities[..n_pops]
                .iter()
                .map(|&ci| {
                    let (_, lat, lon) = CITIES[ci];
                    // Jitter within the metro area so interfaces of different ASes in the
                    // same city are not exactly co-located.
                    GeoCoord::new(
                        lat + rng.gen_range(-0.2..0.2),
                        lon + rng.gen_range(-0.2..0.2),
                    )
                })
                .collect();
            pops.insert(asn, locations);
            tier_of.insert(asn, tier);
        };

        let mut id = 0u64;
        let mut tier1 = Vec::new();
        for _ in 0..num_t1 {
            add_as(
                &mut topology,
                &mut rng,
                id,
                Tier::Tier1,
                cfg.tier1_pops,
                &mut pops,
                &mut tier_of,
            );
            tier1.push(AsId(id));
            id += 1;
        }
        let mut tier2 = Vec::new();
        for _ in 0..num_t2 {
            add_as(
                &mut topology,
                &mut rng,
                id,
                Tier::Tier2,
                cfg.tier2_pops,
                &mut pops,
                &mut tier_of,
            );
            tier2.push(AsId(id));
            id += 1;
        }
        let mut tier3 = Vec::new();
        for _ in 0..num_t3 {
            add_as(
                &mut topology,
                &mut rng,
                id,
                Tier::Tier3,
                cfg.tier3_pops,
                &mut pops,
                &mut tier_of,
            );
            tier3.push(AsId(id));
            id += 1;
        }

        let connect = |topology: &mut Topology,
                       rng: &mut StdRng,
                       a: AsId,
                       b: AsId,
                       rel: Relationship,
                       pops: &HashMap<AsId, Vec<GeoCoord>>,
                       next_if: &mut HashMap<AsId, u32>| {
            let n_parallel = rng
                .gen_range(cfg.parallel_links.0..=cfg.parallel_links.1)
                .max(1);
            let pops_a = &pops[&a];
            let pops_b = &pops[&b];
            for _ in 0..n_parallel {
                let loc_a = pops_a[rng.gen_range(0..pops_a.len())];
                let loc_b = pops_b[rng.gen_range(0..pops_b.len())];
                let bandwidth = link_bandwidth(rng, rel);
                let ifa = {
                    let e = next_if.entry(a).or_insert(1);
                    let v = IfId(*e);
                    *e += 1;
                    v
                };
                let ifb = {
                    let e = next_if.entry(b).or_insert(1);
                    let v = IfId(*e);
                    *e += 1;
                    v
                };
                topology
                    .add_link(a, ifa, loc_a, b, ifb, loc_b, bandwidth, rel)
                    .expect("generator produced a conflicting link");
            }
        };

        // Tier-1 full mesh (the transit-free core).
        for i in 0..tier1.len() {
            for j in (i + 1)..tier1.len() {
                connect(
                    &mut topology,
                    &mut rng,
                    tier1[i],
                    tier1[j],
                    Relationship::Core,
                    &pops,
                    &mut next_if,
                );
            }
        }

        // Tier-2: providers among tier-1 (preferential to low ids ~ high degree), peers among tier-2.
        for &asn in &tier2 {
            let n_prov = rng
                .gen_range(cfg.tier2_providers.0..=cfg.tier2_providers.1)
                .max(1);
            let mut providers = tier1.clone();
            providers.shuffle(&mut rng);
            for &p in providers.iter().take(n_prov) {
                connect(
                    &mut topology,
                    &mut rng,
                    p,
                    asn,
                    Relationship::ProviderToCustomer,
                    &pops,
                    &mut next_if,
                );
            }
        }
        for (idx, &asn) in tier2.iter().enumerate() {
            let n_peers = rng.gen_range(cfg.tier2_peers.0..=cfg.tier2_peers.1);
            for _ in 0..n_peers {
                if tier2.len() < 2 {
                    break;
                }
                let other = tier2[rng.gen_range(0..tier2.len())];
                if other != asn && idx < tier2.len() {
                    connect(
                        &mut topology,
                        &mut rng,
                        asn,
                        other,
                        Relationship::PeerToPeer,
                        &pops,
                        &mut next_if,
                    );
                }
            }
        }

        // Tier-3 stubs: providers among tier-2 (or tier-1 as a fallback).
        for &asn in &tier3 {
            let n_prov = rng
                .gen_range(cfg.tier3_providers.0..=cfg.tier3_providers.1)
                .max(1);
            let pool = if tier2.is_empty() { &tier1 } else { &tier2 };
            let mut providers = pool.clone();
            providers.shuffle(&mut rng);
            for &p in providers.iter().take(n_prov) {
                connect(
                    &mut topology,
                    &mut rng,
                    p,
                    asn,
                    Relationship::ProviderToCustomer,
                    &pops,
                    &mut next_if,
                );
            }
        }

        topology
    }
}

/// Draws a link capacity appropriate for the relationship (core links are fatter).
fn link_bandwidth(rng: &mut StdRng, rel: Relationship) -> Bandwidth {
    match rel {
        Relationship::Core => Bandwidth::from_gbps(rng.gen_range(100..=800)),
        Relationship::PeerToPeer => Bandwidth::from_gbps(rng.gen_range(10..=200)),
        Relationship::ProviderToCustomer | Relationship::CustomerToProvider => {
            Bandwidth::from_gbps(rng.gen_range(1..=100))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Tier;

    #[test]
    fn generates_requested_size() {
        let t = TopologyGenerator::new(GeneratorConfig::tiny(1)).generate();
        assert_eq!(t.num_ases(), 20);
        assert!(t.num_links() > 20);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn generated_topology_is_connected() {
        for seed in [1, 2, 3] {
            let t = TopologyGenerator::new(GeneratorConfig::tiny(seed)).generate();
            assert!(
                t.is_connected(),
                "seed {seed} produced a disconnected topology"
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = TopologyGenerator::new(GeneratorConfig::tiny(42)).generate();
        let b = TopologyGenerator::new(GeneratorConfig::tiny(42)).generate();
        assert_eq!(a.num_links(), b.num_links());
        assert_eq!(a.as_ids(), b.as_ids());
        for (la, lb) in a.links.values().zip(b.links.values()) {
            assert_eq!(la, lb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = TopologyGenerator::new(GeneratorConfig::tiny(1)).generate();
        let b = TopologyGenerator::new(GeneratorConfig::tiny(2)).generate();
        // Extremely unlikely to coincide exactly.
        let same = a.num_links() == b.num_links()
            && a.links.values().zip(b.links.values()).all(|(x, y)| x == y);
        assert!(!same);
    }

    #[test]
    fn has_all_three_tiers_and_core_mesh() {
        let t = TopologyGenerator::new(GeneratorConfig::default()).generate();
        let tiers: Vec<Tier> = t.ases.values().map(|n| n.tier).collect();
        assert!(tiers.contains(&Tier::Tier1));
        assert!(tiers.contains(&Tier::Tier2));
        assert!(tiers.contains(&Tier::Tier3));
        // Tier-1 ASes form a clique.
        let t1: Vec<AsId> = t
            .ases
            .values()
            .filter(|n| n.tier == Tier::Tier1)
            .map(|n| n.id)
            .collect();
        for &a in &t1 {
            let neigh = t.neighbors(a);
            for &b in &t1 {
                if a != b {
                    assert!(neigh.contains(&b), "{a} not connected to {b}");
                }
            }
        }
    }

    #[test]
    fn stub_ases_have_providers() {
        let t = TopologyGenerator::new(GeneratorConfig::default()).generate();
        for node in t.ases.values().filter(|n| n.tier == Tier::Tier3) {
            let has_provider = t.links_of(node.id).iter().any(|lid| {
                t.link(*lid)
                    .unwrap()
                    .relationship_from(node.id)
                    .map(|r| r.neighbor_is_provider())
                    .unwrap_or(false)
            });
            assert!(has_provider, "{} has no provider", node.id);
        }
    }

    #[test]
    fn link_latencies_and_bandwidths_are_plausible() {
        let t = TopologyGenerator::new(GeneratorConfig::default()).generate();
        for link in t.links.values() {
            // Great-circle delay between any two cities is below ~110 ms one-way.
            assert!(link.metrics.latency.as_millis() <= 120);
            assert!(link.metrics.bandwidth >= Bandwidth::from_gbps(1));
        }
    }

    #[test]
    fn parallel_links_exist_between_some_as_pairs() {
        let cfg = GeneratorConfig {
            parallel_links: (2, 3),
            ..GeneratorConfig::tiny(5)
        };
        let t = TopologyGenerator::new(cfg).generate();
        let mut pair_counts: std::collections::HashMap<(AsId, AsId), usize> = Default::default();
        for link in t.links.values() {
            let key = if link.a.asn < link.b.asn {
                (link.a.asn, link.b.asn)
            } else {
                (link.b.asn, link.a.asn)
            };
            *pair_counts.entry(key).or_default() += 1;
        }
        assert!(pair_counts.values().any(|&c| c >= 2));
    }

    #[test]
    fn paper_scale_config_is_larger() {
        let cfg = GeneratorConfig::paper_scale(1);
        assert_eq!(cfg.num_ases, 500);
        assert!(cfg.parallel_links.1 >= 2);
    }
}
