//! IRVM bytecode: instructions, programs and static validation.

use irec_types::{AsId, IfId, IrecError, MetricKind, Result};
use irec_wire::{Decode, Encode, WireReader, WireWriter};

/// Maximum number of instructions a program may contain.
///
/// The paper's RACs "only allow executables up to a certain size limit"; this is that limit
/// for the code section.
pub const MAX_CODE_LEN: usize = 4096;

/// Maximum number of entries in the avoid-links data section.
pub const MAX_AVOID_LINKS: usize = 4096;

/// Maximum operand-stack depth during execution.
pub const MAX_STACK_DEPTH: usize = 256;

/// One IRVM instruction.
///
/// The machine is a stack machine over signed 64-bit integers. Metric push instructions read
/// from the host-provided [`crate::exec::CandidateView`]; all arithmetic is checked and
/// overflow terminates execution with an error (a sandbox never panics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Push a constant.
    Push(i64),
    /// Push the candidate's extended-path metric (latency in µs, bandwidth in kbit/s, or a
    /// count, depending on the metric kind).
    PushMetric(MetricKind),
    /// Push 1 if the candidate path traverses any link in the program's avoid list, else 0.
    PushAvoidHit,
    /// Push the zero-based index of the candidate in the batch (useful for tie-breaking).
    PushIndex,
    /// Duplicate the top of the stack.
    Dup,
    /// Swap the two topmost values.
    Swap,
    /// Discard the top of the stack.
    Drop,
    /// Checked addition.
    Add,
    /// Checked subtraction.
    Sub,
    /// Checked multiplication.
    Mul,
    /// Checked division (division by zero is an execution error).
    Div,
    /// Checked negation.
    Neg,
    /// Minimum of the two topmost values.
    Min,
    /// Maximum of the two topmost values.
    Max,
    /// Push 1 if `a < b` else 0 (`a` pushed before `b`).
    Lt,
    /// Push 1 if `a <= b` else 0.
    Le,
    /// Push 1 if `a > b` else 0.
    Gt,
    /// Push 1 if `a >= b` else 0.
    Ge,
    /// Push 1 if `a == b` else 0.
    Eq,
    /// Push 1 if `a != b` else 0.
    Ne,
    /// Logical AND of two 0/1 values (non-zero counts as true).
    And,
    /// Logical OR.
    Or,
    /// Logical NOT.
    Not,
    /// Unconditional jump to the absolute instruction index.
    Jump(u32),
    /// Pop a value; jump to the absolute instruction index if it is zero.
    JumpIfZero(u32),
    /// Terminate: the candidate is rejected (not selectable by this algorithm).
    Reject,
    /// Terminate: the candidate is accepted with the score on top of the stack
    /// (lower scores are better).
    Accept,
}

impl Instruction {
    /// Wire opcode of the instruction.
    fn opcode(&self) -> u8 {
        match self {
            Instruction::Push(_) => 1,
            Instruction::PushMetric(_) => 2,
            Instruction::PushAvoidHit => 3,
            Instruction::PushIndex => 4,
            Instruction::Dup => 5,
            Instruction::Swap => 6,
            Instruction::Drop => 7,
            Instruction::Add => 8,
            Instruction::Sub => 9,
            Instruction::Mul => 10,
            Instruction::Div => 11,
            Instruction::Neg => 12,
            Instruction::Min => 13,
            Instruction::Max => 14,
            Instruction::Lt => 15,
            Instruction::Le => 16,
            Instruction::Gt => 17,
            Instruction::Ge => 18,
            Instruction::Eq => 19,
            Instruction::Ne => 20,
            Instruction::And => 21,
            Instruction::Or => 22,
            Instruction::Not => 23,
            Instruction::Jump(_) => 24,
            Instruction::JumpIfZero(_) => 25,
            Instruction::Reject => 26,
            Instruction::Accept => 27,
        }
    }
}

impl Encode for Instruction {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_u8(self.opcode());
        match self {
            Instruction::Push(v) => {
                // zigzag-encode signed constants
                writer.put_varint(zigzag_encode(*v));
            }
            Instruction::PushMetric(kind) => writer.put_u8(kind.tag()),
            Instruction::Jump(target) | Instruction::JumpIfZero(target) => writer.put_u32v(*target),
            _ => {}
        }
    }
}

impl Decode for Instruction {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        let opcode = reader.get_u8()?;
        Ok(match opcode {
            1 => Instruction::Push(zigzag_decode(reader.get_varint()?)),
            2 => {
                let tag = reader.get_u8()?;
                let kind = MetricKind::from_tag(tag)
                    .ok_or_else(|| IrecError::decode(format!("unknown metric tag {tag}")))?;
                Instruction::PushMetric(kind)
            }
            3 => Instruction::PushAvoidHit,
            4 => Instruction::PushIndex,
            5 => Instruction::Dup,
            6 => Instruction::Swap,
            7 => Instruction::Drop,
            8 => Instruction::Add,
            9 => Instruction::Sub,
            10 => Instruction::Mul,
            11 => Instruction::Div,
            12 => Instruction::Neg,
            13 => Instruction::Min,
            14 => Instruction::Max,
            15 => Instruction::Lt,
            16 => Instruction::Le,
            17 => Instruction::Gt,
            18 => Instruction::Ge,
            19 => Instruction::Eq,
            20 => Instruction::Ne,
            21 => Instruction::And,
            22 => Instruction::Or,
            23 => Instruction::Not,
            24 => Instruction::Jump(reader.get_u32v()?),
            25 => Instruction::JumpIfZero(reader.get_u32v()?),
            26 => Instruction::Reject,
            27 => Instruction::Accept,
            other => return Err(IrecError::decode(format!("unknown opcode {other}"))),
        })
    }
}

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Program metadata: a human-readable name and the per-egress selection budget the algorithm
/// requests (the RAC clamps it to its own configured maximum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramMeta {
    /// Human-readable algorithm name (for logs, path tagging and the Fig. 8 series labels).
    pub name: String,
    /// How many PCBs per (origin, interface group, egress interface) the algorithm wants to
    /// select. The paper's evaluation uses 20.
    pub max_selected: u32,
}

impl Encode for ProgramMeta {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_string(&self.name);
        writer.put_u32v(self.max_selected);
    }
}

impl Decode for ProgramMeta {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        let name = reader.get_string()?;
        if name.len() > 256 {
            return Err(IrecError::decode("program name too long"));
        }
        Ok(ProgramMeta {
            name,
            max_selected: reader.get_u32v()?,
        })
    }
}

/// A complete IRVM program: metadata, the avoid-links data section, and the code section.
///
/// The encoded form of a `Program` is exactly the "executable" the paper's on-demand RACs
/// fetch from origin ASes and verify by hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Program metadata.
    pub meta: ProgramMeta,
    /// Links (identified by `(AS, egress interface)` of the crossing hop entry) that this
    /// algorithm wants to avoid; queried with [`Instruction::PushAvoidHit`]. Used by the
    /// pull-based disjointness algorithm (§VIII-B).
    pub avoid_links: Vec<(AsId, IfId)>,
    /// Instruction sequence.
    pub code: Vec<Instruction>,
}

impl Program {
    /// Creates a program with no avoid list.
    pub fn new(name: impl Into<String>, max_selected: u32, code: Vec<Instruction>) -> Self {
        Program {
            meta: ProgramMeta {
                name: name.into(),
                max_selected,
            },
            avoid_links: Vec::new(),
            code,
        }
    }

    /// Serializes the program to its canonical byte form (what gets hashed and fetched).
    pub fn to_module_bytes(&self) -> Vec<u8> {
        self.encode_to_vec()
    }

    /// Parses and validates a program from its canonical byte form.
    pub fn from_module_bytes(bytes: &[u8]) -> Result<Self> {
        let program: Program = irec_wire::from_bytes(bytes)?;
        program.validate()?;
        Ok(program)
    }

    /// The SHA-256 digest of the canonical byte form; this is what PCB `Algorithm`
    /// extensions pin.
    pub fn code_hash(&self) -> irec_crypto::Digest {
        irec_crypto::sha256(&self.to_module_bytes())
    }

    /// Statically validates the program: non-empty bounded code, in-range jump targets,
    /// bounded data section.
    pub fn validate(&self) -> Result<()> {
        if self.code.is_empty() {
            return Err(IrecError::policy("program has no code"));
        }
        if self.code.len() > MAX_CODE_LEN {
            return Err(IrecError::policy(format!(
                "program has {} instructions, limit is {MAX_CODE_LEN}",
                self.code.len()
            )));
        }
        if self.avoid_links.len() > MAX_AVOID_LINKS {
            return Err(IrecError::policy(format!(
                "avoid list has {} entries, limit is {MAX_AVOID_LINKS}",
                self.avoid_links.len()
            )));
        }
        if self.meta.max_selected == 0 {
            return Err(IrecError::policy("max_selected must be at least 1"));
        }
        for (i, instr) in self.code.iter().enumerate() {
            if let Instruction::Jump(t) | Instruction::JumpIfZero(t) = instr {
                if *t as usize >= self.code.len() {
                    return Err(IrecError::policy(format!(
                        "instruction {i} jumps to out-of-range target {t}"
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Encode for Program {
    fn encode(&self, writer: &mut WireWriter) {
        self.meta.encode(writer);
        writer.put_varint(self.avoid_links.len() as u64);
        for (asn, ifid) in &self.avoid_links {
            writer.put_varint(asn.value());
            writer.put_u32v(ifid.value());
        }
        writer.put_varint(self.code.len() as u64);
        for instr in &self.code {
            instr.encode(writer);
        }
    }
}

impl Decode for Program {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        let meta = ProgramMeta::decode(reader)?;
        let n_avoid = reader.get_varint()? as usize;
        if n_avoid > MAX_AVOID_LINKS {
            return Err(IrecError::decode("avoid list too large"));
        }
        let mut avoid_links = Vec::with_capacity(n_avoid);
        for _ in 0..n_avoid {
            let asn = AsId(reader.get_varint()?);
            let ifid = IfId(reader.get_u32v()?);
            avoid_links.push((asn, ifid));
        }
        let n_code = reader.get_varint()? as usize;
        if n_code > MAX_CODE_LEN {
            return Err(IrecError::decode("code section too large"));
        }
        let mut code = Vec::with_capacity(n_code);
        for _ in 0..n_code {
            code.push(Instruction::decode(reader)?);
        }
        Ok(Program {
            meta,
            avoid_links,
            code,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn simple_program() -> Program {
        Program::new(
            "lowest-latency",
            20,
            vec![
                Instruction::PushMetric(MetricKind::Latency),
                Instruction::Accept,
            ],
        )
    }

    #[test]
    fn program_roundtrip() {
        let mut p = simple_program();
        p.avoid_links.push((AsId(3), IfId(7)));
        let bytes = p.to_module_bytes();
        let decoded = Program::from_module_bytes(&bytes).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn code_hash_is_stable_and_content_sensitive() {
        let p = simple_program();
        assert_eq!(p.code_hash(), p.code_hash());
        let mut q = p.clone();
        q.code.insert(0, Instruction::Push(1));
        q.code.insert(1, Instruction::Drop);
        assert_ne!(p.code_hash(), q.code_hash());
    }

    #[test]
    fn validation_rejects_empty_code() {
        let p = Program::new("empty", 20, vec![]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_out_of_range_jump() {
        let p = Program::new(
            "bad-jump",
            20,
            vec![Instruction::Jump(5), Instruction::Accept],
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_oversized_code() {
        let p = Program::new("huge", 20, vec![Instruction::Push(0); MAX_CODE_LEN + 1]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_selection_budget() {
        let p = Program::new("zero", 0, vec![Instruction::Accept]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn from_module_bytes_validates() {
        let bad = Program::new("bad", 20, vec![Instruction::Jump(99), Instruction::Accept]);
        // Encode without validating, decode must reject.
        let bytes = bad.to_module_bytes();
        assert!(Program::from_module_bytes(&bytes).is_err());
    }

    #[test]
    fn garbage_bytes_rejected() {
        assert!(Program::from_module_bytes(&[0xff; 32]).is_err());
        assert!(Program::from_module_bytes(&[]).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 1234, -1234, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn every_instruction_roundtrips() {
        let all = vec![
            Instruction::Push(-42),
            Instruction::PushMetric(MetricKind::Latency),
            Instruction::PushMetric(MetricKind::Bandwidth),
            Instruction::PushMetric(MetricKind::HopCount),
            Instruction::PushAvoidHit,
            Instruction::PushIndex,
            Instruction::Dup,
            Instruction::Swap,
            Instruction::Drop,
            Instruction::Add,
            Instruction::Sub,
            Instruction::Mul,
            Instruction::Div,
            Instruction::Neg,
            Instruction::Min,
            Instruction::Max,
            Instruction::Lt,
            Instruction::Le,
            Instruction::Gt,
            Instruction::Ge,
            Instruction::Eq,
            Instruction::Ne,
            Instruction::And,
            Instruction::Or,
            Instruction::Not,
            Instruction::Jump(0),
            Instruction::JumpIfZero(1),
            Instruction::Reject,
            Instruction::Accept,
        ];
        let p = Program::new("all", 1, all.clone());
        let decoded = Program::from_module_bytes(&p.to_module_bytes()).unwrap();
        assert_eq!(decoded.code, all);
    }

    proptest! {
        #[test]
        fn prop_push_constant_roundtrip(v in any::<i64>()) {
            let p = Program::new("c", 1, vec![Instruction::Push(v), Instruction::Accept]);
            let decoded = Program::from_module_bytes(&p.to_module_bytes()).unwrap();
            prop_assert_eq!(decoded.code[0], Instruction::Push(v));
        }

        #[test]
        fn prop_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = Program::from_module_bytes(&data);
        }
    }
}
