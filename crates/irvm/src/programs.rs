//! Ready-made IRVM criteria programs.
//!
//! These cover the elementary optimality criteria of the paper's "beta" standardization tier
//! (latency, bandwidth, hop count), the composed criteria used in the running examples
//! (shortest-widest, latency-bounded widest), and the link-avoidance program that the
//! pull-based disjointness (PD) algorithm ships via on-demand routing in §VIII-B.

use crate::bytecode::{Instruction, Program, ProgramMeta};
use irec_types::{AsId, IfId, Latency, MetricKind};

/// Default per-egress selection budget (the paper registers at most 20 paths per RAC,
/// origin AS and interface group).
pub const DEFAULT_MAX_SELECTED: u32 = 20;

/// Score = path latency (µs). Selects the lowest-latency candidates.
pub fn lowest_latency(max_selected: u32) -> Program {
    Program::new(
        "lowest-latency",
        max_selected,
        vec![
            Instruction::PushMetric(MetricKind::Latency),
            Instruction::Accept,
        ],
    )
}

/// Score = AS-hop count. Selects the shortest candidates (the legacy SCION criterion).
pub fn shortest_path(max_selected: u32) -> Program {
    Program::new(
        "shortest-path",
        max_selected,
        vec![
            Instruction::PushMetric(MetricKind::HopCount),
            Instruction::Accept,
        ],
    )
}

/// Score = −bandwidth (kbit/s). Selects the highest-bandwidth candidates.
pub fn widest_path(max_selected: u32) -> Program {
    Program::new(
        "widest-path",
        max_selected,
        vec![
            Instruction::PushMetric(MetricKind::Bandwidth),
            Instruction::Neg,
            Instruction::Accept,
        ],
    )
}

/// Shortest-widest: lexicographically prefer higher bandwidth, then lower latency — the
/// on-demand example of the paper's Fig. 2c.
///
/// Encoded as a composite score `-bandwidth_kbps * 2^20 + min(latency_us, 2^20 - 1)`; since
/// latency is clamped below the scale factor, bandwidth strictly dominates and latency only
/// breaks ties.
pub fn shortest_widest(max_selected: u32) -> Program {
    const SCALE: i64 = 1 << 20;
    Program::new(
        "shortest-widest",
        max_selected,
        vec![
            Instruction::PushMetric(MetricKind::Bandwidth),
            Instruction::Neg,
            Instruction::Push(SCALE),
            Instruction::Mul,
            Instruction::PushMetric(MetricKind::Latency),
            Instruction::Push(SCALE - 1),
            Instruction::Min,
            Instruction::Add,
            Instruction::Accept,
        ],
    )
}

/// Highest-bandwidth path subject to a latency bound — the live-video criterion of the
/// paper's Example #2 (Fig. 1, dashed arrow).
pub fn bounded_latency_widest(bound: Latency, max_selected: u32) -> Program {
    Program::new(
        format!("widest-under-{}ms", bound.as_millis()),
        max_selected,
        vec![
            // if latency > bound: reject
            Instruction::PushMetric(MetricKind::Latency),
            Instruction::Push(bound.as_micros() as i64),
            Instruction::Gt,
            Instruction::JumpIfZero(5),
            Instruction::Reject,
            // else: score = -bandwidth
            Instruction::PushMetric(MetricKind::Bandwidth),
            Instruction::Neg,
            Instruction::Accept,
        ],
    )
}

/// The pull-based disjointness building block: reject any candidate that traverses a link in
/// `avoid`, otherwise score by latency. The PD algorithm originates on-demand PCBs carrying
/// this program with the avoid list set to the links of the paths discovered so far
/// (§VIII-B).
pub fn avoid_links(avoid: Vec<(AsId, IfId)>, max_selected: u32) -> Program {
    Program {
        meta: ProgramMeta {
            name: "avoid-links".to_string(),
            max_selected,
        },
        avoid_links: avoid,
        code: vec![
            Instruction::PushAvoidHit,
            Instruction::JumpIfZero(3),
            Instruction::Reject,
            Instruction::PushMetric(MetricKind::Latency),
            Instruction::Accept,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{CandidateView, ExecutionLimits, Interpreter, Verdict};
    use irec_types::{Bandwidth, PathMetrics};

    fn candidate(
        index: u64,
        latency_ms: u64,
        bw_mbps: u64,
        hops: u32,
        links: Vec<(AsId, IfId)>,
    ) -> CandidateView {
        CandidateView::new(
            index,
            PathMetrics {
                latency: Latency::from_millis(latency_ms),
                bandwidth: Bandwidth::from_mbps(bw_mbps),
                hops,
            },
            links,
        )
    }

    /// The three candidate paths of the paper's Fig. 1 between Src and Dst:
    /// short/thin (20 ms, 10 Mbps), medium (30 ms, 100 Mbps), long/wide (40 ms, 1 Gbps).
    fn figure1_candidates() -> Vec<CandidateView> {
        vec![
            candidate(0, 20, 10, 2, vec![(AsId(1), IfId(1)), (AsId(2), IfId(2))]),
            candidate(1, 30, 100, 3, vec![(AsId(1), IfId(2)), (AsId(4), IfId(3))]),
            candidate(
                2,
                40,
                1000,
                3,
                vec![(AsId(1), IfId(2)), (AsId(4), IfId(2)), (AsId(5), IfId(2))],
            ),
        ]
    }

    fn select(program: Program, candidates: &[CandidateView]) -> Vec<usize> {
        Interpreter::new(program, ExecutionLimits::default())
            .unwrap()
            .select_best(candidates)
    }

    #[test]
    fn lowest_latency_picks_the_voip_path() {
        let selected = select(lowest_latency(1), &figure1_candidates());
        assert_eq!(selected, vec![0]);
    }

    #[test]
    fn widest_path_picks_the_file_transfer_path() {
        let selected = select(widest_path(1), &figure1_candidates());
        assert_eq!(selected, vec![2]);
    }

    #[test]
    fn bounded_latency_widest_picks_the_live_video_path() {
        // Highest bandwidth with latency <= 30 ms is the medium path — Example #2.
        let selected = select(
            bounded_latency_widest(Latency::from_millis(30), 1),
            &figure1_candidates(),
        );
        assert_eq!(selected, vec![1]);
    }

    #[test]
    fn bounded_latency_rejects_everything_when_bound_too_tight() {
        let selected = select(
            bounded_latency_widest(Latency::from_millis(5), 20),
            &figure1_candidates(),
        );
        assert!(selected.is_empty());
    }

    #[test]
    fn shortest_path_prefers_fewest_hops() {
        let selected = select(shortest_path(1), &figure1_candidates());
        assert_eq!(selected, vec![0]);
    }

    #[test]
    fn shortest_widest_breaks_bandwidth_ties_by_latency() {
        let candidates = vec![
            candidate(0, 50, 100, 3, vec![]),
            candidate(1, 20, 100, 2, vec![]), // same bandwidth, lower latency
            candidate(2, 10, 40, 1, vec![]),  // lower bandwidth
        ];
        let selected = select(shortest_widest(2), &candidates);
        assert_eq!(selected, vec![1, 0]);
    }

    #[test]
    fn avoid_links_rejects_overlapping_paths() {
        let avoid = vec![(AsId(1), IfId(1))];
        let selected = select(avoid_links(avoid, 20), &figure1_candidates());
        // Candidate 0 uses (AS1, if1) and must be rejected; 1 and 2 remain, ordered by latency.
        assert_eq!(selected, vec![1, 2]);
    }

    #[test]
    fn avoid_links_with_empty_list_accepts_all() {
        let selected = select(avoid_links(vec![], 20), &figure1_candidates());
        assert_eq!(selected.len(), 3);
    }

    #[test]
    fn all_builders_produce_valid_programs() {
        for p in [
            lowest_latency(20),
            shortest_path(20),
            widest_path(20),
            shortest_widest(20),
            bounded_latency_widest(Latency::from_millis(30), 20),
            avoid_links(vec![(AsId(1), IfId(1))], 20),
        ] {
            assert!(p.validate().is_ok(), "{} failed validation", p.meta.name);
            // Each must also round-trip through module bytes (they get shipped on the wire).
            let decoded = Program::from_module_bytes(&p.to_module_bytes()).unwrap();
            assert_eq!(decoded, p);
        }
    }

    #[test]
    fn scores_are_deterministic() {
        let p = shortest_widest(20);
        let interp = Interpreter::new(p, ExecutionLimits::default()).unwrap();
        let c = candidate(0, 17, 250, 4, vec![]);
        let (v1, _) = interp.evaluate(&c).unwrap();
        let (v2, _) = interp.evaluate(&c).unwrap();
        assert_eq!(v1, v2);
        assert!(matches!(v1, Verdict::Accepted(_)));
    }
}
