//! The fuel-metered IRVM interpreter — the sandbox in which RACs run routing algorithms.

use crate::bytecode::{Instruction, Program, MAX_STACK_DEPTH};
use irec_types::{AsId, IfId, IrecError, MetricKind, PathMetrics, Result};

/// Resource limits for one program execution (one candidate × one egress interface).
///
/// The paper: "an algorithm's runtime and memory consumption are strictly limited". Fuel is
/// the instruction budget; the stack limit bounds memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionLimits {
    /// Maximum number of executed instructions per candidate evaluation.
    pub fuel: u64,
    /// Maximum operand-stack depth.
    pub max_stack: usize,
}

impl Default for ExecutionLimits {
    fn default() -> Self {
        ExecutionLimits {
            fuel: 10_000,
            max_stack: MAX_STACK_DEPTH,
        }
    }
}

impl ExecutionLimits {
    /// Generous limits for trusted, statically configured algorithms.
    pub const STATIC_RAC: ExecutionLimits = ExecutionLimits {
        fuel: 100_000,
        max_stack: MAX_STACK_DEPTH,
    };
    /// Strict limits for untrusted on-demand algorithms fetched from remote ASes.
    pub const ON_DEMAND_RAC: ExecutionLimits = ExecutionLimits {
        fuel: 10_000,
        max_stack: 64,
    };
}

/// The host-side view of one candidate PCB, as exposed to the algorithm.
///
/// The metrics are *extended-path* metrics when the RAC has extended-path optimization
/// enabled (§IV-E): the received path metrics plus the intra-AS crossing towards the egress
/// interface currently being evaluated. With the mechanism disabled they are the received
/// metrics unchanged. The algorithm itself cannot tell the difference — exactly like in the
/// paper, where the RAC prepares inputs and the algorithm stays generic.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateView {
    /// Index of the candidate within the batch handed to the algorithm.
    pub index: u64,
    /// Extended (or received) path metrics of the candidate.
    pub metrics: PathMetrics,
    /// Links traversed by the candidate, identified by `(AS, egress interface)`.
    pub links: Vec<(AsId, IfId)>,
}

impl CandidateView {
    /// Creates a candidate view.
    pub fn new(index: u64, metrics: PathMetrics, links: Vec<(AsId, IfId)>) -> Self {
        CandidateView {
            index,
            metrics,
            links,
        }
    }

    fn metric_value(&self, kind: MetricKind) -> i64 {
        let raw = self.metrics.value(kind).raw();
        i64::try_from(raw).unwrap_or(i64::MAX)
    }

    fn intersects(&self, avoid: &[(AsId, IfId)]) -> bool {
        self.links.iter().any(|l| avoid.contains(l))
    }
}

/// The outcome of evaluating a program on one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The candidate is not selectable by this algorithm.
    Rejected,
    /// The candidate is selectable with this score; lower is better.
    Accepted(i64),
}

impl Verdict {
    /// The score if accepted.
    pub fn score(&self) -> Option<i64> {
        match self {
            Verdict::Accepted(s) => Some(*s),
            Verdict::Rejected => None,
        }
    }

    /// Whether the candidate was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Verdict::Accepted(_))
    }
}

/// Counters reported after an execution; used by the Fig. 6/7 benches and by RAC accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Instructions actually executed.
    pub instructions: u64,
    /// High-water mark of the operand stack.
    pub max_stack_depth: usize,
}

/// The IRVM interpreter, holding a validated program.
///
/// Creating an `Interpreter` corresponds to the paper's "WASM setup" step (module validation
/// and instantiation); [`Interpreter::evaluate`] corresponds to "WASM module execution".
#[derive(Debug, Clone)]
pub struct Interpreter {
    program: Program,
    limits: ExecutionLimits,
}

impl Interpreter {
    /// Instantiates an interpreter for `program` (validating it) under `limits`.
    pub fn new(program: Program, limits: ExecutionLimits) -> Result<Self> {
        program.validate()?;
        Ok(Interpreter { program, limits })
    }

    /// Instantiates an interpreter from the canonical module bytes, as an on-demand RAC does
    /// after fetching and hash-verifying the executable.
    pub fn from_module_bytes(bytes: &[u8], limits: ExecutionLimits) -> Result<Self> {
        let program = Program::from_module_bytes(bytes)?;
        Ok(Interpreter { program, limits })
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The per-candidate resource limits.
    pub fn limits(&self) -> ExecutionLimits {
        self.limits
    }

    /// Evaluates the program on one candidate, returning the verdict and execution counters.
    pub fn evaluate(&self, candidate: &CandidateView) -> Result<(Verdict, ExecutionStats)> {
        let code = &self.program.code;
        let mut stack: Vec<i64> = Vec::with_capacity(16);
        let mut pc: usize = 0;
        let mut fuel = self.limits.fuel;
        let mut stats = ExecutionStats::default();

        macro_rules! pop {
            () => {
                stack
                    .pop()
                    .ok_or_else(|| IrecError::algorithm("stack underflow"))?
            };
        }
        macro_rules! push {
            ($v:expr) => {{
                if stack.len() >= self.limits.max_stack {
                    return Err(IrecError::resource_limit("operand stack overflow"));
                }
                stack.push($v);
                stats.max_stack_depth = stats.max_stack_depth.max(stack.len());
            }};
        }
        macro_rules! binop {
            ($f:expr) => {{
                let b = pop!();
                let a = pop!();
                let r: i64 = $f(a, b)?;
                push!(r);
            }};
        }

        loop {
            if fuel == 0 {
                return Err(IrecError::resource_limit(format!(
                    "fuel exhausted after {} instructions",
                    stats.instructions
                )));
            }
            fuel -= 1;
            stats.instructions += 1;

            let Some(instr) = code.get(pc) else {
                // Running off the end of the code without Accept/Reject is an error: the
                // algorithm produced no decision.
                return Err(IrecError::algorithm("program ended without a verdict"));
            };
            pc += 1;

            match *instr {
                Instruction::Push(v) => push!(v),
                Instruction::PushMetric(kind) => push!(candidate.metric_value(kind)),
                Instruction::PushAvoidHit => {
                    push!(i64::from(candidate.intersects(&self.program.avoid_links)))
                }
                Instruction::PushIndex => {
                    push!(i64::try_from(candidate.index).unwrap_or(i64::MAX))
                }
                Instruction::Dup => {
                    let top = *stack
                        .last()
                        .ok_or_else(|| IrecError::algorithm("stack underflow"))?;
                    push!(top);
                }
                Instruction::Swap => {
                    let b = pop!();
                    let a = pop!();
                    push!(b);
                    push!(a);
                }
                Instruction::Drop => {
                    let _ = pop!();
                }
                Instruction::Add => binop!(|a: i64, b: i64| a
                    .checked_add(b)
                    .ok_or_else(|| IrecError::algorithm("integer overflow in add"))),
                Instruction::Sub => binop!(|a: i64, b: i64| a
                    .checked_sub(b)
                    .ok_or_else(|| IrecError::algorithm("integer overflow in sub"))),
                Instruction::Mul => binop!(|a: i64, b: i64| a
                    .checked_mul(b)
                    .ok_or_else(|| IrecError::algorithm("integer overflow in mul"))),
                Instruction::Div => binop!(|a: i64, b: i64| a
                    .checked_div(b)
                    .ok_or_else(|| IrecError::algorithm("division by zero or overflow"))),
                Instruction::Neg => {
                    let a = pop!();
                    push!(a
                        .checked_neg()
                        .ok_or_else(|| IrecError::algorithm("integer overflow in neg"))?);
                }
                Instruction::Min => binop!(|a: i64, b: i64| Ok::<i64, IrecError>(a.min(b))),
                Instruction::Max => binop!(|a: i64, b: i64| Ok::<i64, IrecError>(a.max(b))),
                Instruction::Lt => binop!(|a, b| Ok::<i64, IrecError>(i64::from(a < b))),
                Instruction::Le => binop!(|a, b| Ok::<i64, IrecError>(i64::from(a <= b))),
                Instruction::Gt => binop!(|a, b| Ok::<i64, IrecError>(i64::from(a > b))),
                Instruction::Ge => binop!(|a, b| Ok::<i64, IrecError>(i64::from(a >= b))),
                Instruction::Eq => binop!(|a, b| Ok::<i64, IrecError>(i64::from(a == b))),
                Instruction::Ne => binop!(|a, b| Ok::<i64, IrecError>(i64::from(a != b))),
                Instruction::And => {
                    binop!(|a, b| Ok::<i64, IrecError>(i64::from(a != 0 && b != 0)))
                }
                Instruction::Or => {
                    binop!(|a, b| Ok::<i64, IrecError>(i64::from(a != 0 || b != 0)))
                }
                Instruction::Not => {
                    let a = pop!();
                    push!(i64::from(a == 0));
                }
                Instruction::Jump(target) => {
                    pc = target as usize;
                }
                Instruction::JumpIfZero(target) => {
                    let cond = pop!();
                    if cond == 0 {
                        pc = target as usize;
                    }
                }
                Instruction::Reject => return Ok((Verdict::Rejected, stats)),
                Instruction::Accept => {
                    let score = pop!();
                    return Ok((Verdict::Accepted(score), stats));
                }
            }
        }
    }

    /// Evaluates the program over a whole candidate batch, returning one verdict per
    /// candidate (in input order). Candidates whose evaluation fails (overflow, fuel, …) are
    /// treated as rejected — a malicious algorithm can only hurt its own beacons, never the
    /// RAC (the sandbox property the paper relies on).
    pub fn evaluate_batch(&self, candidates: &[CandidateView]) -> Vec<Verdict> {
        candidates
            .iter()
            .map(|c| match self.evaluate(c) {
                Ok((verdict, _)) => verdict,
                Err(_) => Verdict::Rejected,
            })
            .collect()
    }

    /// Evaluates a batch and returns the indices of the best `max_selected` accepted
    /// candidates, ordered by ascending score (ties broken by candidate order).
    pub fn select_best(&self, candidates: &[CandidateView]) -> Vec<usize> {
        let verdicts = self.evaluate_batch(candidates);
        let mut accepted: Vec<(i64, usize)> = verdicts
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.score().map(|s| (s, i)))
            .collect();
        accepted.sort();
        accepted
            .into_iter()
            .take(self.program.meta.max_selected as usize)
            .map(|(_, i)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Program;
    use irec_types::{Bandwidth, Latency};
    use proptest::prelude::*;

    fn candidate(index: u64, latency_ms: u64, bw_mbps: u64, hops: u32) -> CandidateView {
        CandidateView::new(
            index,
            PathMetrics {
                latency: Latency::from_millis(latency_ms),
                bandwidth: Bandwidth::from_mbps(bw_mbps),
                hops,
            },
            vec![(AsId(index), IfId(1))],
        )
    }

    fn run(program: Program, candidate: &CandidateView) -> Verdict {
        Interpreter::new(program, ExecutionLimits::default())
            .unwrap()
            .evaluate(candidate)
            .unwrap()
            .0
    }

    #[test]
    fn score_by_latency() {
        let p = Program::new(
            "latency",
            20,
            vec![
                Instruction::PushMetric(MetricKind::Latency),
                Instruction::Accept,
            ],
        );
        let v = run(p, &candidate(0, 25, 100, 3));
        assert_eq!(v, Verdict::Accepted(25_000)); // µs
    }

    #[test]
    fn arithmetic_and_comparison() {
        // score = hops * 1000 - 1, accept only if bandwidth >= 50 Mbps.
        let p = Program::new(
            "combo",
            20,
            vec![
                Instruction::PushMetric(MetricKind::Bandwidth),
                Instruction::Push(50_000),
                Instruction::Ge,
                Instruction::JumpIfZero(9),
                Instruction::PushMetric(MetricKind::HopCount),
                Instruction::Push(1000),
                Instruction::Mul,
                Instruction::Push(1),
                Instruction::Sub,
                // index 9:
                Instruction::Accept, // if jumped here with empty stack -> underflow -> handled below
            ],
        );
        // Wide path: accepted with score 4*1000-1.
        let v = run(p.clone(), &candidate(0, 10, 100, 4));
        assert_eq!(v, Verdict::Accepted(3999));
        // Narrow path: jumps to Accept with an empty stack => algorithm error.
        let interp = Interpreter::new(p, ExecutionLimits::default()).unwrap();
        assert!(interp.evaluate(&candidate(0, 10, 10, 4)).is_err());
    }

    #[test]
    fn reject_verdict() {
        let p = Program::new("reject-all", 20, vec![Instruction::Reject]);
        let v = run(p, &candidate(0, 10, 10, 1));
        assert_eq!(v, Verdict::Rejected);
        assert!(!v.is_accepted());
        assert_eq!(v.score(), None);
    }

    #[test]
    fn avoid_list_membership() {
        let mut p = Program::new(
            "avoid",
            20,
            vec![
                Instruction::PushAvoidHit,
                Instruction::JumpIfZero(3),
                Instruction::Reject,
                Instruction::PushMetric(MetricKind::Latency),
                Instruction::Accept,
            ],
        );
        p.avoid_links.push((AsId(5), IfId(1)));
        let interp = Interpreter::new(p, ExecutionLimits::default()).unwrap();
        // Candidate 5 traverses (AS5, if1) which is on the avoid list.
        let (v_avoided, _) = interp.evaluate(&candidate(5, 10, 10, 1)).unwrap();
        assert_eq!(v_avoided, Verdict::Rejected);
        let (v_clear, _) = interp.evaluate(&candidate(6, 10, 10, 1)).unwrap();
        assert!(v_clear.is_accepted());
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let p = Program::new("spin", 20, vec![Instruction::Jump(0)]);
        let interp = Interpreter::new(
            p,
            ExecutionLimits {
                fuel: 1000,
                max_stack: 16,
            },
        )
        .unwrap();
        let err = interp.evaluate(&candidate(0, 1, 1, 1)).unwrap_err();
        assert_eq!(err.category(), "resource-limit");
    }

    #[test]
    fn stack_overflow_is_contained() {
        // Push in a loop forever.
        let p = Program::new(
            "pusher",
            20,
            vec![Instruction::Push(1), Instruction::Jump(0)],
        );
        let interp = Interpreter::new(
            p,
            ExecutionLimits {
                fuel: 100_000,
                max_stack: 32,
            },
        )
        .unwrap();
        let err = interp.evaluate(&candidate(0, 1, 1, 1)).unwrap_err();
        assert_eq!(err.category(), "resource-limit");
    }

    #[test]
    fn stack_underflow_is_an_algorithm_error() {
        let p = Program::new("underflow", 20, vec![Instruction::Add, Instruction::Accept]);
        let interp = Interpreter::new(p, ExecutionLimits::default()).unwrap();
        let err = interp.evaluate(&candidate(0, 1, 1, 1)).unwrap_err();
        assert_eq!(err.category(), "algorithm");
    }

    #[test]
    fn division_by_zero_is_an_algorithm_error() {
        let p = Program::new(
            "div0",
            20,
            vec![
                Instruction::Push(1),
                Instruction::Push(0),
                Instruction::Div,
                Instruction::Accept,
            ],
        );
        let interp = Interpreter::new(p, ExecutionLimits::default()).unwrap();
        assert!(interp.evaluate(&candidate(0, 1, 1, 1)).is_err());
    }

    #[test]
    fn running_off_the_end_is_an_error() {
        let p = Program::new("no-verdict", 20, vec![Instruction::Push(1)]);
        let interp = Interpreter::new(p, ExecutionLimits::default()).unwrap();
        assert!(interp.evaluate(&candidate(0, 1, 1, 1)).is_err());
    }

    #[test]
    fn batch_evaluation_turns_errors_into_rejections() {
        let p = Program::new(
            "fragile",
            20,
            vec![
                // Divide 100 by (hops - 2): errors for hops == 2.
                Instruction::Push(100),
                Instruction::PushMetric(MetricKind::HopCount),
                Instruction::Push(2),
                Instruction::Sub,
                Instruction::Div,
                Instruction::Accept,
            ],
        );
        let interp = Interpreter::new(p, ExecutionLimits::default()).unwrap();
        let candidates = vec![
            candidate(0, 1, 1, 3),
            candidate(1, 1, 1, 2),
            candidate(2, 1, 1, 4),
        ];
        let verdicts = interp.evaluate_batch(&candidates);
        assert!(verdicts[0].is_accepted());
        assert_eq!(verdicts[1], Verdict::Rejected);
        assert!(verdicts[2].is_accepted());
    }

    #[test]
    fn select_best_orders_by_score_and_respects_budget() {
        let p = Program::new(
            "latency",
            2,
            vec![
                Instruction::PushMetric(MetricKind::Latency),
                Instruction::Accept,
            ],
        );
        let interp = Interpreter::new(p, ExecutionLimits::default()).unwrap();
        let candidates = vec![
            candidate(0, 30, 10, 1),
            candidate(1, 10, 10, 1),
            candidate(2, 20, 10, 1),
            candidate(3, 40, 10, 1),
        ];
        let selected = interp.select_best(&candidates);
        assert_eq!(selected, vec![1, 2]);
    }

    #[test]
    fn logic_and_stack_ops() {
        // score = min(latency, 5000) if NOT (hops > 10) else reject, exercising
        // Dup/Swap/Drop/Min/Not/And/Or.
        let p = Program::new(
            "logic",
            20,
            vec![
                Instruction::PushMetric(MetricKind::HopCount),
                Instruction::Push(10),
                Instruction::Gt,
                Instruction::Not,
                Instruction::Push(1),
                Instruction::And,
                Instruction::Push(0),
                Instruction::Or,
                Instruction::JumpIfZero(15),
                Instruction::PushMetric(MetricKind::Latency),
                Instruction::Push(5000),
                Instruction::Min,
                Instruction::Dup,
                Instruction::Swap,
                Instruction::Drop,
                // 15:
                Instruction::Accept,
            ],
        );
        // This program has a quirk: when jumping to 15 the stack is empty; only valid paths
        // reach Accept with a value. hops=3 is fine:
        let v = run(p.clone(), &candidate(0, 100, 10, 3));
        assert_eq!(v, Verdict::Accepted(5000));
        let interp = Interpreter::new(p, ExecutionLimits::default()).unwrap();
        assert!(interp.evaluate(&candidate(0, 100, 10, 11)).is_err());
    }

    #[test]
    fn execution_stats_reported() {
        let p = Program::new(
            "latency",
            20,
            vec![
                Instruction::PushMetric(MetricKind::Latency),
                Instruction::Accept,
            ],
        );
        let interp = Interpreter::new(p, ExecutionLimits::default()).unwrap();
        let (_, stats) = interp.evaluate(&candidate(0, 10, 10, 1)).unwrap();
        assert_eq!(stats.instructions, 2);
        assert_eq!(stats.max_stack_depth, 1);
    }

    #[test]
    fn negative_scores_and_neg_instruction() {
        // score = -bandwidth => widest path first.
        let p = Program::new(
            "widest",
            20,
            vec![
                Instruction::PushMetric(MetricKind::Bandwidth),
                Instruction::Neg,
                Instruction::Accept,
            ],
        );
        let v = run(p, &candidate(0, 10, 100, 1));
        assert_eq!(v, Verdict::Accepted(-100_000));
    }

    proptest! {
        #[test]
        fn prop_interpreter_never_panics_on_random_programs(
            opcodes in proptest::collection::vec(0u8..30, 1..64),
            lat in 0u64..1_000_000, bw in 0u64..1_000_000, hops in 0u32..64)
        {
            // Build a syntactically valid random program (jump targets clamped in-range).
            let n = opcodes.len() as u32;
            let code: Vec<Instruction> = opcodes.iter().enumerate().map(|(i, &op)| match op {
                0 => Instruction::Push(i as i64),
                1 => Instruction::PushMetric(MetricKind::Latency),
                2 => Instruction::PushMetric(MetricKind::Bandwidth),
                3 => Instruction::PushAvoidHit,
                4 => Instruction::PushIndex,
                5 => Instruction::Dup,
                6 => Instruction::Swap,
                7 => Instruction::Drop,
                8 => Instruction::Add,
                9 => Instruction::Sub,
                10 => Instruction::Mul,
                11 => Instruction::Div,
                12 => Instruction::Neg,
                13 => Instruction::Min,
                14 => Instruction::Max,
                15 => Instruction::Lt,
                16 => Instruction::Le,
                17 => Instruction::Gt,
                18 => Instruction::Ge,
                19 => Instruction::Eq,
                20 => Instruction::Ne,
                21 => Instruction::And,
                22 => Instruction::Or,
                23 => Instruction::Not,
                24 => Instruction::Jump((i as u32 + 1) % n),
                25 => Instruction::JumpIfZero((i as u32 + 1) % n),
                26 => Instruction::Reject,
                27 => Instruction::Accept,
                _ => Instruction::Push(0),
            }).collect();
            let p = Program::new("fuzz", 5, code);
            if let Ok(interp) = Interpreter::new(p, ExecutionLimits { fuel: 2000, max_stack: 32 }) {
                // Must terminate (fuel) and never panic.
                let c = candidate(0, lat, bw, hops);
                let _ = interp.evaluate(&c);
            }
        }

        #[test]
        fn prop_fuel_bounds_instruction_count(fuel in 1u64..5000) {
            let p = Program::new("spin", 1, vec![Instruction::Jump(0)]);
            let interp = Interpreter::new(p, ExecutionLimits { fuel, max_stack: 8 }).unwrap();
            let c = candidate(0, 1, 1, 1);
            let err = interp.evaluate(&c).unwrap_err();
            prop_assert_eq!(err.category(), "resource-limit");
        }
    }
}
