//! A tiny assembly language for IRVM programs.
//!
//! The paper argues that on-demand algorithms should be writable "in familiar languages" and
//! compiled to a portable module format. The text form below plays that role for tests,
//! examples and benches: one instruction per line, `;` comments, labels ending in `:`,
//! and a small header for metadata and the avoid-links data section.
//!
//! ```text
//! ; highest-bandwidth path with latency <= 30 ms
//! .name   bounded-widest
//! .select 20
//!
//! push_metric latency
//! push        30000
//! gt
//! jz          ok
//! reject
//! ok:
//! push_metric bandwidth
//! neg
//! accept
//! ```

use crate::bytecode::{Instruction, Program, ProgramMeta};
use irec_types::{AsId, IfId, IrecError, MetricKind, Result};
use std::collections::HashMap;

/// Assembles a text program into a validated [`Program`].
pub fn assemble(source: &str) -> Result<Program> {
    let mut name = String::from("unnamed");
    let mut max_selected: u32 = 20;
    let mut avoid_links: Vec<(AsId, IfId)> = Vec::new();

    // First pass: strip comments, collect directives, labels and raw instruction lines.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut instr_index: u32 = 0;

    for (lineno, raw) in source.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let directive = parts.next().unwrap_or("");
            match directive {
                "name" => {
                    name = parts
                        .next()
                        .ok_or_else(|| err(lineno, ".name needs an argument"))?
                        .to_string();
                }
                "select" => {
                    max_selected = parts
                        .next()
                        .ok_or_else(|| err(lineno, ".select needs an argument"))?
                        .parse()
                        .map_err(|_| err(lineno, "invalid .select value"))?;
                }
                "avoid" => {
                    let asn: u64 = parts
                        .next()
                        .ok_or_else(|| err(lineno, ".avoid needs <as> <if>"))?
                        .parse()
                        .map_err(|_| err(lineno, "invalid AS in .avoid"))?;
                    let ifid: u32 = parts
                        .next()
                        .ok_or_else(|| err(lineno, ".avoid needs <as> <if>"))?
                        .parse()
                        .map_err(|_| err(lineno, "invalid interface in .avoid"))?;
                    avoid_links.push((AsId(asn), IfId(ifid)));
                }
                other => return Err(err(lineno, &format!("unknown directive .{other}"))),
            }
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || labels.insert(label.to_string(), instr_index).is_some() {
                return Err(err(
                    lineno,
                    &format!("invalid or duplicate label '{label}'"),
                ));
            }
            continue;
        }
        lines.push((lineno, line.to_string()));
        instr_index += 1;
    }

    // Second pass: parse instructions, resolving label operands.
    let mut code = Vec::with_capacity(lines.len());
    for (lineno, line) in &lines {
        code.push(parse_instruction(*lineno, line, &labels)?);
    }

    let program = Program {
        meta: ProgramMeta { name, max_selected },
        avoid_links,
        code,
    };
    program.validate()?;
    Ok(program)
}

fn err(lineno: usize, msg: &str) -> IrecError {
    IrecError::decode(format!("asm line {}: {msg}", lineno + 1))
}

fn parse_metric(lineno: usize, token: &str) -> Result<MetricKind> {
    match token {
        "latency" => Ok(MetricKind::Latency),
        "bandwidth" => Ok(MetricKind::Bandwidth),
        "hops" | "hop_count" => Ok(MetricKind::HopCount),
        "links" | "link_count" => Ok(MetricKind::LinkCount),
        other => Err(err(lineno, &format!("unknown metric '{other}'"))),
    }
}

fn parse_target(lineno: usize, token: &str, labels: &HashMap<String, u32>) -> Result<u32> {
    if let Some(&target) = labels.get(token) {
        return Ok(target);
    }
    token.parse().map_err(|_| {
        err(
            lineno,
            &format!("unknown label or invalid target '{token}'"),
        )
    })
}

fn parse_instruction(
    lineno: usize,
    line: &str,
    labels: &HashMap<String, u32>,
) -> Result<Instruction> {
    let mut parts = line.split_whitespace();
    let mnemonic = parts.next().expect("non-empty line");
    let operand = parts.next();
    if parts.next().is_some() {
        return Err(err(lineno, "too many operands"));
    }
    fn need(lineno: usize, op: Option<&str>) -> Result<&str> {
        op.ok_or_else(|| err(lineno, "missing operand"))
    }

    let instr = match mnemonic {
        "push" => Instruction::Push(
            need(lineno, operand)?
                .parse()
                .map_err(|_| err(lineno, "invalid integer constant"))?,
        ),
        "push_metric" => Instruction::PushMetric(parse_metric(lineno, need(lineno, operand)?)?),
        "push_avoid_hit" => Instruction::PushAvoidHit,
        "push_index" => Instruction::PushIndex,
        "dup" => Instruction::Dup,
        "swap" => Instruction::Swap,
        "drop" => Instruction::Drop,
        "add" => Instruction::Add,
        "sub" => Instruction::Sub,
        "mul" => Instruction::Mul,
        "div" => Instruction::Div,
        "neg" => Instruction::Neg,
        "min" => Instruction::Min,
        "max" => Instruction::Max,
        "lt" => Instruction::Lt,
        "le" => Instruction::Le,
        "gt" => Instruction::Gt,
        "ge" => Instruction::Ge,
        "eq" => Instruction::Eq,
        "ne" => Instruction::Ne,
        "and" => Instruction::And,
        "or" => Instruction::Or,
        "not" => Instruction::Not,
        "jmp" | "jump" => Instruction::Jump(parse_target(lineno, need(lineno, operand)?, labels)?),
        "jz" | "jump_if_zero" => {
            Instruction::JumpIfZero(parse_target(lineno, need(lineno, operand)?, labels)?)
        }
        "reject" => Instruction::Reject,
        "accept" => Instruction::Accept,
        other => return Err(err(lineno, &format!("unknown mnemonic '{other}'"))),
    };

    // Operand-less mnemonics must not carry an operand.
    match instr {
        Instruction::Push(_)
        | Instruction::PushMetric(_)
        | Instruction::Jump(_)
        | Instruction::JumpIfZero(_) => {}
        _ if operand.is_some() => return Err(err(lineno, "unexpected operand")),
        _ => {}
    }
    Ok(instr)
}

/// Disassembles a program into the text form accepted by [`assemble`].
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    out.push_str(&format!(".name {}\n", program.meta.name));
    out.push_str(&format!(".select {}\n", program.meta.max_selected));
    for (asn, ifid) in &program.avoid_links {
        out.push_str(&format!(".avoid {} {}\n", asn.value(), ifid.value()));
    }
    out.push('\n');
    for instr in &program.code {
        let line = match instr {
            Instruction::Push(v) => format!("push {v}"),
            Instruction::PushMetric(MetricKind::Latency) => "push_metric latency".to_string(),
            Instruction::PushMetric(MetricKind::Bandwidth) => "push_metric bandwidth".to_string(),
            Instruction::PushMetric(MetricKind::HopCount) => "push_metric hops".to_string(),
            Instruction::PushMetric(MetricKind::LinkCount) => "push_metric links".to_string(),
            Instruction::PushAvoidHit => "push_avoid_hit".to_string(),
            Instruction::PushIndex => "push_index".to_string(),
            Instruction::Dup => "dup".to_string(),
            Instruction::Swap => "swap".to_string(),
            Instruction::Drop => "drop".to_string(),
            Instruction::Add => "add".to_string(),
            Instruction::Sub => "sub".to_string(),
            Instruction::Mul => "mul".to_string(),
            Instruction::Div => "div".to_string(),
            Instruction::Neg => "neg".to_string(),
            Instruction::Min => "min".to_string(),
            Instruction::Max => "max".to_string(),
            Instruction::Lt => "lt".to_string(),
            Instruction::Le => "le".to_string(),
            Instruction::Gt => "gt".to_string(),
            Instruction::Ge => "ge".to_string(),
            Instruction::Eq => "eq".to_string(),
            Instruction::Ne => "ne".to_string(),
            Instruction::And => "and".to_string(),
            Instruction::Or => "or".to_string(),
            Instruction::Not => "not".to_string(),
            Instruction::Jump(t) => format!("jmp {t}"),
            Instruction::JumpIfZero(t) => format!("jz {t}"),
            Instruction::Reject => "reject".to_string(),
            Instruction::Accept => "accept".to_string(),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{CandidateView, ExecutionLimits, Interpreter, Verdict};
    use irec_types::{Bandwidth, Latency, PathMetrics};

    fn candidate(latency_ms: u64, bw_mbps: u64, hops: u32) -> CandidateView {
        CandidateView::new(
            0,
            PathMetrics {
                latency: Latency::from_millis(latency_ms),
                bandwidth: Bandwidth::from_mbps(bw_mbps),
                hops,
            },
            vec![(AsId(1), IfId(1))],
        )
    }

    #[test]
    fn assemble_simple_program() {
        let p =
            assemble("; lowest latency\n.name latency\n.select 5\npush_metric latency\naccept\n")
                .unwrap();
        assert_eq!(p.meta.name, "latency");
        assert_eq!(p.meta.max_selected, 5);
        assert_eq!(p.code.len(), 2);
    }

    #[test]
    fn assemble_with_labels_and_run() {
        let source = r"
            .name bounded-widest
            .select 20
            push_metric latency
            push 30000          ; 30 ms in microseconds
            gt
            jz ok
            reject
            ok:
            push_metric bandwidth
            neg
            accept
        ";
        let p = assemble(source).unwrap();
        let interp = Interpreter::new(p, ExecutionLimits::default()).unwrap();
        // 20 ms path: accepted, score = -bandwidth.
        let (v, _) = interp.evaluate(&candidate(20, 100, 2)).unwrap();
        assert_eq!(v, Verdict::Accepted(-100_000));
        // 40 ms path: rejected.
        let (v, _) = interp.evaluate(&candidate(40, 1000, 4)).unwrap();
        assert_eq!(v, Verdict::Rejected);
    }

    #[test]
    fn assemble_avoid_directive() {
        let p = assemble(
            ".name avoid\n.avoid 5 7\n.avoid 6 1\npush_avoid_hit\njz ok\nreject\nok:\npush 0\naccept\n",
        )
        .unwrap();
        assert_eq!(p.avoid_links, vec![(AsId(5), IfId(7)), (AsId(6), IfId(1))]);
    }

    #[test]
    fn numeric_jump_targets_accepted() {
        let p = assemble(".name n\npush 1\njz 3\npush 2\naccept\n").unwrap();
        assert_eq!(p.code[1], Instruction::JumpIfZero(3));
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let err = assemble("push_metric latency\nbogus_instruction\naccept\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = assemble("push\naccept\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = assemble("jmp nowhere\naccept\n").unwrap_err();
        assert!(err.to_string().contains("nowhere"), "{err}");
        let err = assemble(".bogus 1\naccept\n").unwrap_err();
        assert!(err.to_string().contains("directive"), "{err}");
    }

    #[test]
    fn duplicate_label_rejected() {
        assert!(assemble("a:\npush 1\na:\naccept\n").is_err());
    }

    #[test]
    fn unknown_metric_rejected() {
        assert!(assemble("push_metric jitter\naccept\n").is_err());
    }

    #[test]
    fn empty_program_rejected() {
        assert!(assemble("; only a comment\n").is_err());
    }

    #[test]
    fn too_many_operands_rejected() {
        assert!(assemble("push 1 2\naccept\n").is_err());
        assert!(assemble("add 1\naccept\n").is_err());
    }

    #[test]
    fn disassemble_assemble_roundtrip() {
        let source = r"
            .name roundtrip
            .select 7
            .avoid 9 3
            push_metric latency
            push 10
            add
            dup
            push 100
            lt
            jz end
            neg
            end:
            accept
        ";
        let p1 = assemble(source).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn all_mnemonics_disassemble_and_reassemble() {
        use crate::bytecode::Instruction as I;
        let p = Program {
            meta: ProgramMeta {
                name: "all".into(),
                max_selected: 3,
            },
            avoid_links: vec![(AsId(1), IfId(2))],
            code: vec![
                I::Push(-5),
                I::PushMetric(MetricKind::Latency),
                I::PushMetric(MetricKind::Bandwidth),
                I::PushMetric(MetricKind::HopCount),
                I::PushMetric(MetricKind::LinkCount),
                I::PushAvoidHit,
                I::PushIndex,
                I::Dup,
                I::Swap,
                I::Drop,
                I::Add,
                I::Sub,
                I::Mul,
                I::Div,
                I::Neg,
                I::Min,
                I::Max,
                I::Lt,
                I::Le,
                I::Gt,
                I::Ge,
                I::Eq,
                I::Ne,
                I::And,
                I::Or,
                I::Not,
                I::Jump(27),
                I::JumpIfZero(27),
                I::Reject,
                I::Accept,
            ],
        };
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p, p2);
    }
}
