//! # irec-irvm
//!
//! **IRVM** — the IREC routing-algorithm virtual machine.
//!
//! In the paper, routing algorithms (both static and on-demand) are compiled to WebAssembly
//! and executed by the RAC inside a Wasmtime sandbox with strict runtime and memory limits;
//! on-demand algorithms are additionally fetched from the origin AS and verified against the
//! code hash pinned in the (signed) PCB. This crate provides the equivalent substrate,
//! implemented from scratch:
//!
//! * a compact **bytecode** format ([`Program`], [`Instruction`]) that can be shipped as an
//!   opaque byte string inside the control plane, hashed, cached and verified,
//! * a **validator** rejecting malformed programs before execution (out-of-range jumps,
//!   oversized code/data sections),
//! * a deterministic, **fuel-metered interpreter** ([`Interpreter`]) with bounded stack and
//!   output sizes — the sandbox: a hostile or buggy algorithm can neither run forever nor
//!   exhaust memory, it simply gets an [`irec_types::IrecError::ResourceLimit`] error,
//! * a **host interface** ([`CandidateView`]) exposing per-candidate extended path metrics
//!   (latency, bandwidth, hop count) and traversed-link membership queries,
//! * a tiny **assembly language** ([`asm`]) so that algorithm authors (tests, examples,
//!   benches) can write criteria programs in text form, and
//! * [`programs`] — ready-made builders for the criteria used throughout the paper
//!   (lowest latency, widest path, shortest-widest, latency-bounded widest, link avoidance
//!   for pull-based disjointness).
//!
//! The execution model mirrors how the paper's RAC calls its algorithm: for every candidate
//! PCB and every egress interface, the algorithm produces either *reject* or a *score*; the
//! RAC keeps, per egress interface, the `max_selected` best-scoring candidates. Scores are
//! "lower is better".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod bytecode;
pub mod exec;
pub mod programs;

pub use bytecode::{Instruction, Program, ProgramMeta, MAX_CODE_LEN, MAX_STACK_DEPTH};
pub use exec::{CandidateView, ExecutionLimits, ExecutionStats, Interpreter, Verdict};
