//! Geographic coordinates and great-circle distance.
//!
//! The paper estimates the propagation delay of inter-domain links from the great-circle
//! distance between the geolocated border routers at the two link ends (CAIDA geo-rel
//! dataset). The topology generator of this reproduction does the same with synthetic
//! locations, and interface groups (§IV-D) are formed from geographic proximity of
//! interfaces, so distance computation lives in the shared types crate.

use crate::metrics::Latency;
use core::fmt;
use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres, used for great-circle distance.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Effective propagation speed of light in fibre, in km per millisecond.
///
/// The common approximation is 2/3 of c, i.e. ~200 km/ms; the paper's "great-circle delay"
/// uses the same style of estimate.
pub const FIBRE_KM_PER_MS: f64 = 200.0;

/// A geographic coordinate (latitude/longitude in degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoCoord {
    /// Latitude in degrees, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, in `[-180, 180]`.
    pub lon: f64,
}

impl GeoCoord {
    /// Creates a coordinate, clamping latitude to `[-90, 90]` and wrapping longitude into
    /// `[-180, 180]`.
    pub fn new(lat: f64, lon: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let mut lon = lon % 360.0;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(&self, other: &GeoCoord) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().asin();
        EARTH_RADIUS_KM * c
    }

    /// Estimated one-way propagation delay to `other`, assuming fibre along the great
    /// circle.
    pub fn propagation_delay(&self, other: &GeoCoord) -> Latency {
        let km = self.distance_km(other);
        let ms = km / FIBRE_KM_PER_MS;
        Latency::from_micros((ms * 1000.0).round() as u64)
    }
}

impl fmt::Display for GeoCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn zero_distance_to_self() {
        let p = GeoCoord::new(47.37, 8.55); // Zurich
        assert!(approx(p.distance_km(&p), 0.0, 1e-9));
        assert_eq!(p.propagation_delay(&p), Latency::ZERO);
    }

    #[test]
    fn known_city_distance_zurich_new_york() {
        let zurich = GeoCoord::new(47.3769, 8.5417);
        let nyc = GeoCoord::new(40.7128, -74.0060);
        let d = zurich.distance_km(&nyc);
        // The true great-circle distance is ~6,330 km.
        assert!(d > 6200.0 && d < 6450.0, "distance was {d}");
    }

    #[test]
    fn known_city_distance_london_sydney() {
        let london = GeoCoord::new(51.5074, -0.1278);
        let sydney = GeoCoord::new(-33.8688, 151.2093);
        let d = london.distance_km(&sydney);
        // The true great-circle distance is ~16,990 km.
        assert!(d > 16800.0 && d < 17200.0, "distance was {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoCoord::new(10.0, 20.0);
        let b = GeoCoord::new(-35.0, 140.0);
        assert!(approx(a.distance_km(&b), b.distance_km(&a), 1e-6));
    }

    #[test]
    fn propagation_delay_uses_fibre_speed() {
        // Points 2000 km apart along the equator: delay should be ~10 ms.
        let a = GeoCoord::new(0.0, 0.0);
        let b = GeoCoord::new(0.0, 17.986); // ~2000 km at the equator
        let delay = a.propagation_delay(&b);
        let ms = delay.as_millis_f64();
        assert!(ms > 9.0 && ms < 11.0, "delay was {ms} ms");
    }

    #[test]
    fn coordinates_are_normalized() {
        let p = GeoCoord::new(95.0, 190.0);
        assert!(approx(p.lat, 90.0, 1e-9));
        assert!(approx(p.lon, -170.0, 1e-9));
        let q = GeoCoord::new(-100.0, -190.0);
        assert!(approx(q.lat, -90.0, 1e-9));
        assert!(approx(q.lon, 170.0, 1e-9));
    }

    #[test]
    fn display_format() {
        let p = GeoCoord::new(1.5, -2.25);
        assert_eq!(p.to_string(), "(1.500, -2.250)");
    }

    #[test]
    fn antipodal_points_half_circumference() {
        let a = GeoCoord::new(0.0, 0.0);
        let b = GeoCoord::new(0.0, 180.0);
        let d = a.distance_km(&b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!(approx(d, half, 1.0), "d={d} half={half}");
    }
}
