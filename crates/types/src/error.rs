//! The shared error type of the IREC workspace.

use core::fmt;

/// Convenience alias for results using [`IrecError`].
pub type Result<T> = core::result::Result<T, IrecError>;

/// Errors that can occur across the IREC crates.
///
/// The variants correspond to the failure classes the paper's architecture has to handle:
/// malformed or unverifiable routing messages, policy rejections, resource-limit violations
/// in the sandboxed algorithm runtime, and missing state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrecError {
    /// A wire message could not be decoded.
    Decode(String),
    /// A wire message could not be encoded (e.g. a field exceeding its width).
    Encode(String),
    /// A signature or hash verification failed.
    Verification(String),
    /// A PCB or algorithm violated a local policy (loop, expired, unknown origin, ...).
    Policy(String),
    /// A sandboxed algorithm exceeded its resource budget (fuel, memory, output size).
    ResourceLimit(String),
    /// A routing algorithm failed during execution.
    Algorithm(String),
    /// Requested state does not exist (unknown AS, interface, beacon, segment, ...).
    NotFound(String),
    /// A component was configured inconsistently.
    Config(String),
    /// An internal invariant was violated; indicates a bug.
    Internal(String),
}

impl IrecError {
    /// Creates a decode error.
    pub fn decode(msg: impl Into<String>) -> Self {
        IrecError::Decode(msg.into())
    }
    /// Creates an encode error.
    pub fn encode(msg: impl Into<String>) -> Self {
        IrecError::Encode(msg.into())
    }
    /// Creates a verification error.
    pub fn verification(msg: impl Into<String>) -> Self {
        IrecError::Verification(msg.into())
    }
    /// Creates a policy error.
    pub fn policy(msg: impl Into<String>) -> Self {
        IrecError::Policy(msg.into())
    }
    /// Creates a resource-limit error.
    pub fn resource_limit(msg: impl Into<String>) -> Self {
        IrecError::ResourceLimit(msg.into())
    }
    /// Creates an algorithm-execution error.
    pub fn algorithm(msg: impl Into<String>) -> Self {
        IrecError::Algorithm(msg.into())
    }
    /// Creates a not-found error.
    pub fn not_found(msg: impl Into<String>) -> Self {
        IrecError::NotFound(msg.into())
    }
    /// Creates a configuration error.
    pub fn config(msg: impl Into<String>) -> Self {
        IrecError::Config(msg.into())
    }
    /// Creates an internal error.
    pub fn internal(msg: impl Into<String>) -> Self {
        IrecError::Internal(msg.into())
    }

    /// A short category label for the error, useful for counters and logs.
    pub fn category(&self) -> &'static str {
        match self {
            IrecError::Decode(_) => "decode",
            IrecError::Encode(_) => "encode",
            IrecError::Verification(_) => "verification",
            IrecError::Policy(_) => "policy",
            IrecError::ResourceLimit(_) => "resource-limit",
            IrecError::Algorithm(_) => "algorithm",
            IrecError::NotFound(_) => "not-found",
            IrecError::Config(_) => "config",
            IrecError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for IrecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            IrecError::Decode(m)
            | IrecError::Encode(m)
            | IrecError::Verification(m)
            | IrecError::Policy(m)
            | IrecError::ResourceLimit(m)
            | IrecError::Algorithm(m)
            | IrecError::NotFound(m)
            | IrecError::Config(m)
            | IrecError::Internal(m) => m,
        };
        write!(f, "{}: {}", self.category(), msg)
    }
}

impl std::error::Error for IrecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_variants() {
        assert_eq!(IrecError::decode("x").category(), "decode");
        assert_eq!(IrecError::encode("x").category(), "encode");
        assert_eq!(IrecError::verification("x").category(), "verification");
        assert_eq!(IrecError::policy("x").category(), "policy");
        assert_eq!(IrecError::resource_limit("x").category(), "resource-limit");
        assert_eq!(IrecError::algorithm("x").category(), "algorithm");
        assert_eq!(IrecError::not_found("x").category(), "not-found");
        assert_eq!(IrecError::config("x").category(), "config");
        assert_eq!(IrecError::internal("x").category(), "internal");
    }

    #[test]
    fn display_contains_category_and_message() {
        let e = IrecError::policy("beacon contains a loop");
        let s = e.to_string();
        assert!(s.contains("policy"));
        assert!(s.contains("beacon contains a loop"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(IrecError::not_found("segment"));
        assert!(e.to_string().contains("segment"));
    }
}
