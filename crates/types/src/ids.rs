//! Identifier types for ASes, interfaces, interface groups, links and algorithms.
//!
//! All identifiers are small `Copy` newtypes over integers so they can be used as map keys,
//! put into wire messages, and generated densely by the topology generator.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifier of an isolation domain (ISD), SCION's trust/routing grouping of ASes.
///
/// The IREC paper operates within a single routing plane, but PCBs in SCION carry the ISD of
/// the origin; we keep the notion so that the PCB format stays faithful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IsdId(pub u16);

impl fmt::Display for IsdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of an autonomous system within the simulated Internet.
///
/// The topology generator assigns dense identifiers `0..n`. The value is 48-bit in SCION
/// (`u64` here for simplicity).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AsId(pub u64);

impl AsId {
    /// Returns the raw numeric value.
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u64> for AsId {
    fn from(v: u64) -> Self {
        AsId(v)
    }
}

/// Fully qualified AS identifier: ISD + AS number, as used in SCION addressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IsdAsId {
    /// Isolation domain.
    pub isd: IsdId,
    /// AS number within the ISD.
    pub asn: AsId,
}

impl IsdAsId {
    /// Creates a fully qualified identifier.
    pub const fn new(isd: IsdId, asn: AsId) -> Self {
        Self { isd, asn }
    }

    /// Convenience constructor placing the AS in the default ISD `1`.
    pub const fn in_default_isd(asn: AsId) -> Self {
        Self { isd: IsdId(1), asn }
    }
}

impl fmt::Display for IsdAsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.isd, self.asn)
    }
}

/// Identifier of an AS border interface.
///
/// In SCION, PCB hop entries specify the ingress and egress *interfaces* of each on-path AS.
/// Interface `0` is reserved to mean "none" (used for the origin hop's ingress and the final
/// hop's egress).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct IfId(pub u32);

impl IfId {
    /// The reserved "no interface" value used by origin/terminal hop entries.
    pub const NONE: IfId = IfId(0);

    /// Whether this is the reserved "no interface" value.
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Returns the raw numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for IfId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

impl From<u32> for IfId {
    fn from(v: u32) -> Self {
        IfId(v)
    }
}

/// Identifier of an interface group (§IV-D of the paper).
///
/// Origin ASes partition (or more generally, cover) their interfaces with groups and
/// originate PCBs per group; downstream ASes optimize per `(origin AS, interface group)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct InterfaceGroupId(pub u32);

impl InterfaceGroupId {
    /// The default group used when an origin AS does not configure interface groups.
    pub const DEFAULT: InterfaceGroupId = InterfaceGroupId(0);

    /// Returns the raw numeric value.
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for InterfaceGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grp{}", self.0)
    }
}

/// Identifier of an inter-domain link in the topology.
///
/// A link connects `(as_a, if_a)` to `(as_b, if_b)`; the topology crate assigns ids densely.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LinkId(pub u64);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Identifier of a routing algorithm, used by the on-demand routing mechanism (§IV-C).
///
/// An on-demand PCB carries `(AlgorithmId, code hash)`. The id is only a hint for caching;
/// integrity comes from the hash, which is covered by the origin AS signature.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AlgorithmId(pub u64);

impl fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alg{}", self.0)
    }
}

/// Identifier of a path segment registered at a path service.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SegmentId(pub u64);

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_formats() {
        assert_eq!(AsId(7).to_string(), "AS7");
        assert_eq!(IfId(3).to_string(), "if3");
        assert_eq!(InterfaceGroupId(2).to_string(), "grp2");
        assert_eq!(IsdAsId::new(IsdId(1), AsId(42)).to_string(), "1-AS42");
        assert_eq!(LinkId(9).to_string(), "link9");
        assert_eq!(AlgorithmId(5).to_string(), "alg5");
        assert_eq!(SegmentId(11).to_string(), "seg11");
    }

    #[test]
    fn ifid_none_semantics() {
        assert!(IfId::NONE.is_none());
        assert!(!IfId(1).is_none());
        assert_eq!(IfId::NONE.value(), 0);
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        let mut set = HashSet::new();
        set.insert(AsId(1));
        set.insert(AsId(2));
        set.insert(AsId(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn isd_as_ordering_is_lexicographic() {
        let a = IsdAsId::new(IsdId(1), AsId(10));
        let b = IsdAsId::new(IsdId(1), AsId(11));
        let c = IsdAsId::new(IsdId(2), AsId(0));
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn conversions_from_primitives() {
        let asid: AsId = 99u64.into();
        assert_eq!(asid, AsId(99));
        let ifid: IfId = 7u32.into();
        assert_eq!(ifid, IfId(7));
    }

    #[test]
    fn default_interface_group_is_zero() {
        assert_eq!(InterfaceGroupId::DEFAULT.value(), 0);
        assert_eq!(InterfaceGroupId::default(), InterfaceGroupId::DEFAULT);
    }
}
