//! # irec-types
//!
//! Core identifier, metric, time and error types shared by every crate in the IREC
//! reproduction.
//!
//! The paper (Inter-Domain Routing with Extensible Criteria) builds on a SCION-like
//! path-aware network. This crate defines the vocabulary used throughout the workspace:
//!
//! * [`AsId`] / [`IsdAsId`] — autonomous-system identifiers,
//! * [`IfId`] — AS interface identifiers (the granularity at which PCBs specify hops),
//! * [`InterfaceGroupId`] — the flexible optimization granularity of §IV-D of the paper,
//! * [`Latency`], [`Bandwidth`], [`GeoCoord`] — the elementary performance metrics carried
//!   in static-info extensions,
//! * [`SimTime`] / [`SimDuration`] — the simulated clock used by the discrete-event
//!   simulator,
//! * [`IrecError`] — the shared error type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod geo;
pub mod ids;
pub mod metrics;
pub mod time;

pub use error::{IrecError, Result};
pub use geo::GeoCoord;
pub use ids::{AlgorithmId, AsId, IfId, InterfaceGroupId, IsdAsId, IsdId, LinkId, SegmentId};
pub use metrics::{Bandwidth, Latency, LinkMetrics, MetricKind, MetricValue, PathMetrics};
pub use time::{SimDuration, SimTime};
