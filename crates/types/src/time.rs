//! Simulated time.
//!
//! The large-scale evaluation of the paper runs in a discrete-event simulator where RACs
//! "optimize and propagate PCBs periodically every ten simulated minutes" and PCBs carry
//! validity times. [`SimTime`] is a monotone microsecond counter since simulation start;
//! [`SimDuration`] is a difference of two such instants.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};
use serde::{Deserialize, Serialize};

/// A duration of simulated time with microsecond granularity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000))
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000))
    }

    /// Creates a duration from minutes.
    pub const fn from_minutes(m: u64) -> Self {
        SimDuration(m.saturating_mul(60_000_000))
    }

    /// Creates a duration from hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h.saturating_mul(3_600_000_000))
    }

    /// Duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Duration in (truncated) seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// An instant of simulated time, measured in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The end of time; used as "never expires".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`.
    pub const fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Whether this instant is at or after `other`.
    pub const fn is_at_or_after(self, other: SimTime) -> bool {
        self.0 >= other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_minutes(10).as_secs(), 600);
        assert_eq!(SimDuration::from_hours(1).as_secs(), 3_600);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(5);
        assert_eq!(t.as_micros(), 5_000_000);
        let later = t + SimDuration::from_millis(500);
        assert_eq!(later.duration_since(t), SimDuration::from_millis(500));
        assert_eq!(later - t, SimDuration::from_millis(500));
        // Saturating in the "wrong" direction.
        assert_eq!(t.duration_since(later), SimDuration::ZERO);
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_minutes(10);
        t += SimDuration::from_minutes(10);
        assert_eq!(t.as_micros(), SimDuration::from_minutes(20).as_micros());
    }

    #[test]
    fn ordering_and_is_at_or_after() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(20);
        assert!(a < b);
        assert!(b.is_at_or_after(a));
        assert!(b.is_at_or_after(b));
        assert!(!a.is_at_or_after(b));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimTime::from_micros(1_000_000).to_string(), "t=1.000s");
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(
            SimDuration::from_secs(2).saturating_mul(3),
            SimDuration::from_secs(6)
        );
        assert_eq!(
            SimDuration(u64::MAX).saturating_mul(2),
            SimDuration(u64::MAX)
        );
    }
}
