//! Performance-metric types carried in PCB static-info extensions and used by routing
//! algorithms as optimization criteria.
//!
//! The paper's "beta features" tier (§VI) standardizes elementary metrics such as latency and
//! bandwidth, how they are computed along a path (addition for latency, min for bandwidth),
//! and how they are encoded in PCBs. This module provides exactly those semantics:
//!
//! * [`Latency`] — microsecond-granularity propagation delay, extended by *addition*,
//! * [`Bandwidth`] — kbit/s capacity, extended by *minimum* (bottleneck),
//! * [`PathMetrics`] — the accumulated metrics of a (partial) path,
//! * [`LinkMetrics`] — the metrics of a single hop / intra-AS crossing.

use core::fmt;
use core::ops::Add;
use serde::{Deserialize, Serialize};

/// Propagation latency with microsecond granularity.
///
/// Latency is an *additive* metric: the latency of a path is the sum of its hop latencies
/// (plus intra-AS crossing latencies when optimizing on extended paths, §IV-E).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Latency(pub u64);

impl Latency {
    /// Zero latency.
    pub const ZERO: Latency = Latency(0);
    /// The maximum representable latency, used as "unreachable".
    pub const MAX: Latency = Latency(u64::MAX);

    /// Creates a latency from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Latency(ms.saturating_mul(1000))
    }

    /// Creates a latency from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Latency(us)
    }

    /// Latency in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Latency in (truncated) whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1000
    }

    /// Latency in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating addition, the path-extension operation for latency.
    pub const fn saturating_add(self, other: Latency) -> Latency {
        Latency(self.0.saturating_add(other.0))
    }
}

impl Add for Latency {
    type Output = Latency;
    fn add(self, rhs: Latency) -> Latency {
        self.saturating_add(rhs)
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// Link or path bandwidth in kbit/s.
///
/// Bandwidth is a *bottleneck* metric: the bandwidth of a path is the minimum of its hop
/// bandwidths.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Zero bandwidth (an unusable path).
    pub const ZERO: Bandwidth = Bandwidth(0);
    /// "Infinite" bandwidth, the identity of the `min` extension operation.
    pub const MAX: Bandwidth = Bandwidth(u64::MAX);

    /// Creates a bandwidth from Mbit/s.
    pub const fn from_mbps(mbps: u64) -> Self {
        Bandwidth(mbps.saturating_mul(1000))
    }

    /// Creates a bandwidth from Gbit/s.
    pub const fn from_gbps(gbps: u64) -> Self {
        Bandwidth(gbps.saturating_mul(1_000_000))
    }

    /// Bandwidth in kbit/s.
    pub const fn as_kbps(self) -> u64 {
        self.0
    }

    /// Bandwidth in (truncated) Mbit/s.
    pub const fn as_mbps(self) -> u64 {
        self.0 / 1000
    }

    /// The bottleneck (min) of two bandwidths — the path-extension operation.
    pub fn bottleneck(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}Gbps", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1000 {
            write!(f, "{:.1}Mbps", self.0 as f64 / 1000.0)
        } else {
            write!(f, "{}kbps", self.0)
        }
    }
}

/// The kind of an elementary metric, used by the wire format and the IRVM host interface to
/// refer to metric slots generically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum MetricKind {
    /// Propagation latency (additive).
    Latency = 1,
    /// Bottleneck bandwidth (min).
    Bandwidth = 2,
    /// AS-hop count (additive, each hop contributes 1).
    HopCount = 3,
    /// Number of distinct inter-domain links (used by disjointness heuristics).
    LinkCount = 4,
}

impl MetricKind {
    /// All metric kinds, in wire order.
    pub const ALL: [MetricKind; 4] = [
        MetricKind::Latency,
        MetricKind::Bandwidth,
        MetricKind::HopCount,
        MetricKind::LinkCount,
    ];

    /// Decodes a metric kind from its wire tag.
    pub fn from_tag(tag: u8) -> Option<MetricKind> {
        match tag {
            1 => Some(MetricKind::Latency),
            2 => Some(MetricKind::Bandwidth),
            3 => Some(MetricKind::HopCount),
            4 => Some(MetricKind::LinkCount),
            _ => None,
        }
    }

    /// Encodes this metric kind as its wire tag.
    pub fn tag(self) -> u8 {
        self as u8
    }
}

/// A dynamically typed metric value, as exposed to on-demand algorithms through the IRVM
/// host interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A latency value.
    Latency(Latency),
    /// A bandwidth value.
    Bandwidth(Bandwidth),
    /// A counter value (hop count, link count, ...).
    Count(u64),
}

impl MetricValue {
    /// Returns the value as a raw u64 in its native unit (µs, kbit/s, or count).
    pub fn raw(self) -> u64 {
        match self {
            MetricValue::Latency(l) => l.as_micros(),
            MetricValue::Bandwidth(b) => b.as_kbps(),
            MetricValue::Count(c) => c,
        }
    }
}

/// Metrics of a single hop: one inter-domain link crossing plus (optionally) the intra-AS
/// crossing towards the egress interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkMetrics {
    /// Propagation latency of the crossing.
    pub latency: Latency,
    /// Capacity of the crossing.
    pub bandwidth: Bandwidth,
}

impl LinkMetrics {
    /// Creates link metrics.
    pub const fn new(latency: Latency, bandwidth: Bandwidth) -> Self {
        Self { latency, bandwidth }
    }

    /// A zero-cost crossing (used for origin hops).
    pub const ZERO: LinkMetrics = LinkMetrics {
        latency: Latency::ZERO,
        bandwidth: Bandwidth::MAX,
    };
}

impl Default for LinkMetrics {
    fn default() -> Self {
        LinkMetrics::ZERO
    }
}

/// Accumulated performance metrics of a (partial) inter-domain path.
///
/// `PathMetrics` implements the extension semantics of the paper's beta-tier metrics:
/// latency extends by addition, bandwidth by bottleneck-min, hop count by increment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathMetrics {
    /// Total propagation latency along the path.
    pub latency: Latency,
    /// Bottleneck bandwidth along the path.
    pub bandwidth: Bandwidth,
    /// Number of AS-level hops (number of inter-domain links traversed).
    pub hops: u32,
}

impl PathMetrics {
    /// The metrics of an empty path (identity of extension).
    pub const EMPTY: PathMetrics = PathMetrics {
        latency: Latency::ZERO,
        bandwidth: Bandwidth::MAX,
        hops: 0,
    };

    /// Extends the path metrics with one hop crossing.
    #[must_use]
    pub fn extend(self, hop: LinkMetrics) -> PathMetrics {
        PathMetrics {
            latency: self.latency + hop.latency,
            bandwidth: self.bandwidth.bottleneck(hop.bandwidth),
            hops: self.hops.saturating_add(1),
        }
    }

    /// Extends the path metrics with an intra-AS crossing, which adds latency and can lower
    /// the bottleneck, but does not increase the AS-hop count.
    #[must_use]
    pub fn extend_intra(self, crossing: LinkMetrics) -> PathMetrics {
        PathMetrics {
            latency: self.latency + crossing.latency,
            bandwidth: self.bandwidth.bottleneck(crossing.bandwidth),
            hops: self.hops,
        }
    }

    /// Returns the value of the requested elementary metric.
    pub fn value(&self, kind: MetricKind) -> MetricValue {
        match kind {
            MetricKind::Latency => MetricValue::Latency(self.latency),
            MetricKind::Bandwidth => MetricValue::Bandwidth(self.bandwidth),
            MetricKind::HopCount => MetricValue::Count(self.hops as u64),
            MetricKind::LinkCount => MetricValue::Count(self.hops as u64),
        }
    }
}

impl Default for PathMetrics {
    fn default() -> Self {
        PathMetrics::EMPTY
    }
}

impl fmt::Display for PathMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} hops, {}, {}]",
            self.hops, self.latency, self.bandwidth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_conversions() {
        assert_eq!(Latency::from_millis(10).as_micros(), 10_000);
        assert_eq!(Latency::from_micros(1500).as_millis(), 1);
        assert!((Latency::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn latency_addition_saturates() {
        let a = Latency::MAX;
        let b = Latency::from_millis(1);
        assert_eq!(a + b, Latency::MAX);
    }

    #[test]
    fn latency_display() {
        assert_eq!(Latency::from_micros(500).to_string(), "500us");
        assert_eq!(Latency::from_millis(10).to_string(), "10.000ms");
    }

    #[test]
    fn bandwidth_conversions_and_bottleneck() {
        assert_eq!(Bandwidth::from_mbps(100).as_kbps(), 100_000);
        assert_eq!(Bandwidth::from_gbps(2).as_mbps(), 2_000_000 / 1000);
        let a = Bandwidth::from_mbps(100);
        let b = Bandwidth::from_mbps(40);
        assert_eq!(a.bottleneck(b), b);
        assert_eq!(b.bottleneck(a), b);
        assert_eq!(a.bottleneck(Bandwidth::MAX), a);
    }

    #[test]
    fn bandwidth_display() {
        assert_eq!(Bandwidth(500).to_string(), "500kbps");
        assert_eq!(Bandwidth::from_mbps(100).to_string(), "100.0Mbps");
        assert_eq!(Bandwidth::from_gbps(2).to_string(), "2.00Gbps");
    }

    #[test]
    fn metric_kind_roundtrip() {
        for kind in MetricKind::ALL {
            assert_eq!(MetricKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(MetricKind::from_tag(0), None);
        assert_eq!(MetricKind::from_tag(200), None);
    }

    #[test]
    fn path_metric_extension_semantics() {
        let m = PathMetrics::EMPTY
            .extend(LinkMetrics::new(
                Latency::from_millis(10),
                Bandwidth::from_mbps(100),
            ))
            .extend(LinkMetrics::new(
                Latency::from_millis(5),
                Bandwidth::from_mbps(40),
            ));
        assert_eq!(m.latency, Latency::from_millis(15));
        assert_eq!(m.bandwidth, Bandwidth::from_mbps(40));
        assert_eq!(m.hops, 2);
    }

    #[test]
    fn intra_as_extension_does_not_count_a_hop() {
        let m = PathMetrics::EMPTY
            .extend(LinkMetrics::new(
                Latency::from_millis(10),
                Bandwidth::from_mbps(100),
            ))
            .extend_intra(LinkMetrics::new(
                Latency::from_millis(3),
                Bandwidth::from_mbps(50),
            ));
        assert_eq!(m.hops, 1);
        assert_eq!(m.latency, Latency::from_millis(13));
        assert_eq!(m.bandwidth, Bandwidth::from_mbps(50));
    }

    #[test]
    fn empty_path_is_extension_identity() {
        let hop = LinkMetrics::new(Latency::from_millis(7), Bandwidth::from_mbps(10));
        let m = PathMetrics::EMPTY.extend(hop);
        assert_eq!(m.latency, hop.latency);
        assert_eq!(m.bandwidth, hop.bandwidth);
        assert_eq!(m.hops, 1);
    }

    #[test]
    fn metric_value_raw() {
        assert_eq!(MetricValue::Latency(Latency::from_millis(1)).raw(), 1000);
        assert_eq!(MetricValue::Bandwidth(Bandwidth::from_mbps(1)).raw(), 1000);
        assert_eq!(MetricValue::Count(5).raw(), 5);
    }

    #[test]
    fn path_metrics_value_accessor() {
        let m = PathMetrics {
            latency: Latency::from_millis(20),
            bandwidth: Bandwidth::from_mbps(50),
            hops: 3,
        };
        assert_eq!(
            m.value(MetricKind::Latency),
            MetricValue::Latency(Latency::from_millis(20))
        );
        assert_eq!(m.value(MetricKind::HopCount), MetricValue::Count(3));
    }
}
