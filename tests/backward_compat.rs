//! Backward-compatibility integration test (§VII-B of the paper): IREC ASes can be deployed
//! incrementally next to legacy ASes, "with no interruptions in connectivity".
//!
//! Half of the ASes in a generated topology run the full IREC stack (multiple RACs, IREC
//! extensions), the other half run a legacy control service (single shortest-path selection,
//! IREC extensions ignored). Connectivity must still be established in both directions, and
//! IREC-originated beacons carrying extensions must traverse legacy ASes unharmed.

use irec_core::{NodeConfig, OriginationSpec, PropagationPolicy, RacConfig};
use irec_pcb::PcbExtensions;
use irec_sim::{Simulation, SimulationConfig};
use irec_topology::builder::figure1_topology;
use irec_topology::{GeneratorConfig, TopologyGenerator};
use irec_types::{AlgorithmId, AsId, IfId};
use std::sync::Arc;

#[test]
fn mixed_irec_and_legacy_deployment_preserves_connectivity() {
    let topology = Arc::new(TopologyGenerator::new(GeneratorConfig::tiny(11)).generate());
    let mut sim = Simulation::new(Arc::clone(&topology), SimulationConfig::default(), |asn| {
        if asn.value() % 2 == 0 {
            NodeConfig::paper_simulation(false)
        } else {
            NodeConfig::legacy()
        }
    })
    .expect("simulation setup");
    sim.run_rounds(8).expect("rounds");

    // Connectivity across the mixed deployment stays high (valley-free policies mean a few
    // stub-to-stub pairs can legitimately lack paths on tiny topologies).
    assert!(
        sim.connectivity() > 0.8,
        "mixed deployment connectivity dropped to {:.2}",
        sim.connectivity()
    );

    // Legacy ASes still learned paths to IREC ASes and vice versa.
    let legacy_as = topology
        .as_ids()
        .into_iter()
        .find(|a| a.value() % 2 == 1)
        .unwrap();
    let irec_as = topology
        .as_ids()
        .into_iter()
        .find(|a| a.value() % 2 == 0)
        .unwrap();
    let legacy_node = sim.node(legacy_as).unwrap();
    let irec_node = sim.node(irec_as).unwrap();
    assert!(
        !legacy_node.path_service().destinations().is_empty(),
        "legacy AS learned no paths"
    );
    assert!(
        !irec_node.path_service().destinations().is_empty(),
        "IREC AS learned no paths"
    );
}

#[test]
fn extension_carrying_beacons_traverse_legacy_ases() {
    // Fig. 1 topology where the middle ASes (X=2, Y=4, Z=5) are legacy-only: the
    // extension-carrying beacons originated by Dst must still reach Src through them.
    let topology = Arc::new(figure1_topology());
    let mut sim = Simulation::new(Arc::clone(&topology), SimulationConfig::default(), |asn| {
        let base = if matches!(asn, AsId(2) | AsId(4) | AsId(5)) {
            NodeConfig::legacy()
        } else {
            NodeConfig::default().with_racs(vec![
                RacConfig::static_rac("1SP", "1SP"),
                RacConfig::on_demand_rac("on-demand"),
            ])
        };
        base.with_policy(PropagationPolicy::All)
    })
    .expect("simulation setup");

    // Dst (AS3) originates on-demand beacons.
    let program = irec_irvm::programs::lowest_latency(5);
    let reference = sim
        .node(AsId(3))
        .unwrap()
        .publish_algorithm(AlgorithmId(1), &program);
    let dst_interfaces: Vec<IfId> = topology
        .as_node(AsId(3))
        .unwrap()
        .interfaces
        .keys()
        .copied()
        .collect();
    sim.node_mut(AsId(3)).unwrap().add_origination(
        OriginationSpec::plain(dst_interfaces)
            .with_extensions(PcbExtensions::none().with_algorithm(reference)),
    );
    sim.run_rounds(8).expect("rounds");

    // The source (an IREC AS) received extension-carrying beacons relayed through legacy
    // transit ASes and its on-demand RAC processed them.
    let src = sim.node(AsId(1)).unwrap();
    let on_demand_paths = src.path_service().paths_to_by(AsId(3), "on-demand");
    assert!(
        !on_demand_paths.is_empty(),
        "on-demand beacons must survive traversal of legacy ASes"
    );
    // And the legacy ASes themselves still have ordinary connectivity.
    let legacy = sim.node(AsId(2)).unwrap();
    assert!(!legacy.path_service().paths_to(AsId(3)).is_empty());
}
