//! Acceptance tests for the merge-aware sub-range reduce: oversized candidate batches
//! (|Φ| > `BATCH_SPLIT_THRESHOLD`) are split into contiguous sub-ranges for parallel
//! execution, and HD's set-valued disjointness objective used to be computed over
//! *concatenated truncations* of those sub-ranges — a hierarchical approximation that can
//! discard the globally disjoint winners. With [`RoutingAlgorithm::merge_partial`] the
//! engine hands HD the full batch plus the partial selections and HD recomputes
//! disjointness over the merged view, so the split run is byte-identical to the unsplit
//! one (loss = 0). These tests pin that at the paper-scale set sizes |Φ| ∈ {600, 2048}
//! and quantify the link-coverage delta the legacy reduce leaves on the table.
//!
//! The workload is a crafted adversarial motif, not a random set: ten independent
//! four-link universes where the globally complementary candidate (`y`) sits in the
//! *second* sub-range behind twenty locally disjoint decoys, so every per-sub-range
//! truncation drops it even though the full-batch greedy picks it. Random workloads tend
//! to saturate the coverage metric and show no delta; this one provably does.

use irec_algorithms::disjoint::HeuristicDisjointness;
use irec_algorithms::{AlgorithmContext, CandidateBatch, RoutingAlgorithm, SelectionResult};
use irec_core::{
    execute_racs_with, Rac, RacConfig, RacOutput, ShardedIngressDb, BATCH_SPLIT_THRESHOLD,
};
use irec_crypto::{KeyRegistry, Signer};
use irec_pcb::{Pcb, PcbExtensions, StaticInfo};
use irec_topology::{AsNode, Tier};
use irec_types::{AsId, Bandwidth, IfId, Latency, Result, SimDuration, SimTime};
use std::collections::BTreeSet;
use std::sync::Arc;

const ORIGIN: AsId = AsId(1);
const TRANSIT: AsId = AsId(5);
const LOCAL: AsId = AsId(62000);
const EGRESS: IfId = IfId(900);
/// Number of independent motif universes; the HD budget (20) is exactly two picks per
/// universe, so the full-batch greedy spends it on `{a1, y}` of every universe.
const MOTIFS: u64 = 10;

/// HD stripped of its merge hook: same selection, but `merges_partial()` stays `false`,
/// so the engine falls back to the generic concatenated-truncation reduce. This is the
/// pre-hook behaviour, kept around to measure what the hook buys.
struct LegacyReduceHd(HeuristicDisjointness);

impl RoutingAlgorithm for LegacyReduceHd {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        self.0.select(batch, ctx)
    }
}

/// A two-hop beacon `ORIGIN --e0--> TRANSIT --e1--> (received locally)`, so its
/// inter-domain link set is exactly `{(ORIGIN, e0), (TRANSIT, e1)}`.
fn chain(registry: &KeyRegistry, seq: u64, e0: u32, e1: u32) -> Pcb {
    let mut pcb = Pcb::originate(
        ORIGIN,
        seq,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_hours(6),
        PcbExtensions::none(),
    );
    let info = StaticInfo::origin(Latency::from_millis(10), Bandwidth::from_mbps(100), None);
    pcb.extend(
        IfId::NONE,
        IfId(e0),
        info,
        &Signer::new(ORIGIN, registry.clone()),
    )
    .expect("origin hop is valid");
    pcb.extend(
        IfId(1),
        IfId(e1),
        info,
        &Signer::new(TRANSIT, registry.clone()),
    )
    .expect("transit hop is valid");
    pcb
}

/// Lays out the adversarial batch. Per motif universe `m` the four links are
/// `Fa = (O, 10+m)`, `Fc = (O, 70+m)`, `Fd = (O, 40+m)`, `S1 = (T, 100+m)`,
/// `S2 = (T, 200+m)`, and the candidates are:
///
/// - `a1 = {Fa, S1}` in sub-range 0 — picked everywhere.
/// - `b1 = {Fa, S2}` and `b2 = {Fc, S1}` in sub-range 1 — locally disjoint decoys that
///   fill sub-range 1's budget.
/// - `y = {Fd, S2}` in sub-range 1 *after* the decoys — disjoint from `a1`, so the
///   full-batch greedy picks it, but it overlaps `b1`, so sub-range 1 truncates it.
/// - filler: identical chains sharing `Fa^0`, so they never beat `y` globally.
///
/// Sub-ranges beyond the second (|Φ| = 2048) are pure filler.
fn adversarial_db(phi: usize) -> ShardedIngressDb {
    assert_eq!(
        BATCH_SPLIT_THRESHOLD, 512,
        "layout assumes 512-wide sub-ranges"
    );
    assert!(phi >= 600, "needs at least two sub-ranges");
    let registry = KeyRegistry::with_ases(7, 64);
    let db = ShardedIngressDb::new(4);
    let mut seq = 0u64;
    let mut push = |e0: u32, e1: u32| {
        let pcb = chain(&registry, seq, e0, e1);
        seq += 1;
        db.insert(pcb, IfId(1), SimTime::ZERO);
    };
    for m in 0..MOTIFS {
        push(10 + m as u32, 100 + m as u32); // a1^m
    }
    for _ in MOTIFS as usize..BATCH_SPLIT_THRESHOLD {
        push(10, 999); // sub-range 0 filler
    }
    for m in 0..MOTIFS {
        push(10 + m as u32, 200 + m as u32); // b1^m
    }
    for m in 0..MOTIFS {
        push(70 + m as u32, 100 + m as u32); // b2^m
    }
    for m in 0..MOTIFS {
        push(40 + m as u32, 200 + m as u32); // y^m
    }
    for _ in (BATCH_SPLIT_THRESHOLD + 3 * MOTIFS as usize)..phi {
        push(10, 998); // sub-range 1+ filler
    }
    db
}

fn run(rac: Rac, phi: usize, split_threshold: usize) -> Vec<RacOutput> {
    let db = adversarial_db(phi);
    let node = AsNode::new(LOCAL, Tier::Tier2);
    let racs = vec![rac];
    let (outputs, _) = execute_racs_with(
        &racs,
        &db,
        &node,
        &[EGRESS],
        SimTime::ZERO,
        4,
        split_threshold,
    )
    .expect("engine pass succeeds");
    outputs
}

fn hd_rac() -> Rac {
    Rac::new_static(RacConfig::static_rac("HD", "HD")).expect("HD resolves")
}

fn legacy_rac() -> Rac {
    Rac::with_algorithm(
        RacConfig::static_rac("HD", "HD"),
        Arc::new(LegacyReduceHd(HeuristicDisjointness::new(20))),
    )
}

/// The disjointness coverage of a selection: the number of distinct inter-AS links
/// (AS, egress interface) traversed by the selected beacons — the quantity HD maximizes.
fn link_coverage(outputs: &[RacOutput]) -> usize {
    let links: BTreeSet<(AsId, IfId)> = outputs
        .iter()
        .flat_map(|output| output.beacon.pcb.link_keys())
        .collect();
    links.len()
}

fn assert_identical(unsplit: &[RacOutput], split: &[RacOutput]) {
    assert_eq!(unsplit.len(), split.len());
    for (a, b) in unsplit.iter().zip(split) {
        assert_eq!(a.rac_name, b.rac_name);
        assert_eq!(a.origin, b.origin);
        assert_eq!(a.group, b.group);
        assert_eq!(a.egress_ifs, b.egress_ifs);
        assert_eq!(a.beacon, b.beacon);
    }
}

/// The headline regression: with the merge hook, HD's split selection is byte-identical
/// to the unsplit one at both paper-scale set sizes — the split is lossless.
#[test]
fn hd_split_is_lossless_with_merge_hook() {
    for phi in [600usize, 2048] {
        assert!(phi > BATCH_SPLIT_THRESHOLD);
        let unsplit = run(hd_rac(), phi, phi);
        let split = run(hd_rac(), phi, BATCH_SPLIT_THRESHOLD);
        assert_identical(&unsplit, &split);
    }
}

/// Quantifies what the hook buys: on the adversarial motif the legacy
/// concatenated-truncation reduce strictly under-covers the full-batch objective (it
/// keeps the sub-range decoys and loses every `y`), while the merge-aware run matches
/// the full-batch coverage exactly (loss = 0).
#[test]
fn hd_split_disjointness_delta_is_quantified() {
    for phi in [600usize, 2048] {
        let full = link_coverage(&run(hd_rac(), phi, phi));
        let merged = link_coverage(&run(hd_rac(), phi, BATCH_SPLIT_THRESHOLD));
        let legacy = link_coverage(&run(legacy_rac(), phi, BATCH_SPLIT_THRESHOLD));
        println!(
            "phi = {phi}: full coverage {full}, merge-hook {merged} (loss {}), \
             legacy reduce {legacy} (loss {})",
            full - merged,
            full - legacy,
        );
        assert_eq!(merged, full, "merge hook must be lossless at phi = {phi}");
        assert!(
            legacy < full,
            "the motif is built so the legacy reduce strictly loses coverage \
             (legacy {legacy} vs full {full} at phi = {phi})"
        );
    }
}

/// The legacy wrapper itself stays deterministic across repeated runs — the loss it
/// measures is an approximation artifact, not a race.
#[test]
fn legacy_reduce_is_still_deterministic() {
    let reference = run(legacy_rac(), 600, BATCH_SPLIT_THRESHOLD);
    assert!(!reference.is_empty());
    for _ in 0..2 {
        let repeat = run(legacy_rac(), 600, BATCH_SPLIT_THRESHOLD);
        assert_identical(&reference, &repeat);
    }
}
