//! Acceptance tests for the churn engine: a seeded churn timeline must be byte-identical
//! — same per-step deltas, same settle rounds, same drop accounting, same final
//! registered paths — across `--round-scheduler {barrier,dag}`, every worker count and
//! every ingress/path shard mix. Churn knobs change the workload deliberately; the
//! parallelism knobs must never change what that workload produces. Plus the
//! staged-migration scenario: live algorithm-catalog swaps rolled across the topology one
//! AS at a time, with the no-blackhole invariant asserted between every step.

use irec_bench::workload::{churn_pass, ChurnFingerprint};
use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
use irec_sim::{
    ChurnConfig, ChurnDelta, ChurnEngine, InvariantChecker, RoundScheduler, Simulation,
    SimulationConfig,
};
use irec_topology::builder::figure1_topology;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

const ASES: usize = 10;
const STEPS: usize = 2;

fn churn_config(churn_seed: u64) -> ChurnConfig {
    ChurnConfig::default()
        .with_rate(1.0)
        .with_seed(churn_seed)
        .with_warmup_rounds(2)
}

/// The sequential barrier run every other configuration must reproduce, memoized per
/// churn seed — the property below revisits the same timeline under many scheduler
/// settings, and re-deriving the authoritative reference each time would dominate the
/// suite's runtime.
fn barrier_reference(churn_seed: u64) -> ChurnFingerprint {
    static CACHE: OnceLock<Mutex<HashMap<u64, ChurnFingerprint>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("reference cache lock");
    cache
        .entry(churn_seed)
        .or_insert_with(|| {
            churn_pass(
                ASES,
                STEPS,
                churn_config(churn_seed),
                RoundScheduler::Barrier,
                1,
                1,
                1,
                churn_seed,
            )
        })
        .clone()
}

proptest! {
    /// The headline property: for any churn seed, the timeline replayed under the DAG or
    /// barrier scheduler with any worker count in {1, 4} and any ingress/path shard mix
    /// over {1, 4, 7} reproduces the sequential barrier run byte for byte.
    #[test]
    fn churn_timelines_are_byte_identical_across_schedulers_and_shards(
        churn_seed in 0u64..3,
        use_dag in any::<bool>(),
        worker_index in 0usize..2,
        ingress_index in 0usize..3,
        path_index in 0usize..3,
    ) {
        let scheduler = if use_dag { RoundScheduler::Dag } else { RoundScheduler::Barrier };
        let workers = [1usize, 4][worker_index];
        let ingress_shards = [1usize, 4, 7][ingress_index];
        let path_shards = [1usize, 4, 7][path_index];
        let reference = barrier_reference(churn_seed);
        prop_assert_eq!(reference.0.len(), STEPS, "every step must be recorded");
        let fingerprint = churn_pass(
            ASES,
            STEPS,
            churn_config(churn_seed),
            scheduler,
            workers,
            ingress_shards,
            path_shards,
            churn_seed,
        );
        prop_assert_eq!(
            &fingerprint, &reference,
            "churn diverged under {} x{} workers, ingress-shards {}, path-shards {}, \
             churn seed {}",
            scheduler, workers, ingress_shards, path_shards, churn_seed
        );
    }
}

/// The staged-migration scenario: roll a new algorithm catalog across a live deployment
/// one AS at a time — the live-reconfiguration dual of a link or node failure. Between
/// every swap the plane must settle without ever blackholing a reachable destination, and
/// after the full roll every AS runs the new catalog.
#[test]
fn staged_catalog_migration_never_blackholes() {
    let mut sim = Simulation::new(
        Arc::new(figure1_topology()),
        SimulationConfig::default(),
        |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
        },
    )
    .expect("figure-1 simulation setup");
    sim.run_rounds(4).expect("warm-up rounds");
    let checker = InvariantChecker::capture(&sim);
    assert!(!checker.baseline().is_empty(), "warmup must register paths");

    let next_catalog = vec![
        RacConfig::static_rac("1SP", "1SP"),
        RacConfig::static_rac("HD", "HD"),
    ];
    let mut engine = ChurnEngine::new(ChurnConfig::default(), |_| {
        NodeConfig::default()
            .with_policy(PropagationPolicy::All)
            .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
    })
    .with_catalogs(vec![next_catalog.clone()]);

    for asn in sim.live_ases() {
        engine
            .apply_delta(&mut sim, ChurnDelta::CatalogSwap(asn))
            .expect("catalog swap applies");
        sim.run_rounds(2).expect("post-swap rounds");
        checker
            .check_no_blackhole(&sim)
            .unwrap_or_else(|e| panic!("blackhole after swapping {asn}: {e}"));
    }

    // After the full roll, every node runs the new catalog and the mixed-algorithm plane
    // still serves every baseline pair.
    for asn in sim.live_ases() {
        let racs = &sim.node(asn).expect("node exists").config().racs;
        let names: Vec<&str> = racs.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["1SP", "HD"], "AS {asn} still runs the old catalog");
    }
    checker
        .check_no_blackhole(&sim)
        .expect("migrated plane serves every baseline pair");
}
