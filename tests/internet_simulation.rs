//! Cross-crate integration tests on the generated Internet-like topology: the paper's
//! simulation setup (§VIII-B) at reduced scale, checking the qualitative claims that the
//! Fig. 8 benches quantify.

use irec_core::NodeConfig;
use irec_metrics::delay::as_pair_delays;
use irec_metrics::tlf::tlf_per_as_pair;
use irec_sim::{Simulation, SimulationConfig};
use irec_topology::{GeneratorConfig, TopologyGenerator};
use std::collections::BTreeMap;
use std::sync::Arc;

fn paper_sim(seed: u64, ases: usize) -> Simulation {
    let mut config = GeneratorConfig::tiny(seed);
    config.num_ases = ases;
    let topology = Arc::new(TopologyGenerator::new(config).generate());
    Simulation::new(topology, SimulationConfig::default(), |_| {
        NodeConfig::paper_simulation(false)
    })
    .expect("simulation setup")
}

#[test]
fn paper_rac_set_reaches_high_connectivity() {
    let mut sim = paper_sim(21, 20);
    sim.run_rounds(8).expect("rounds");
    assert!(
        sim.connectivity() > 0.85,
        "connectivity {:.2} too low",
        sim.connectivity()
    );
    // Every algorithm registered paths somewhere.
    for algorithm in ["1SP", "5SP", "HD", "DON"] {
        assert!(
            !sim.registered_paths_by(algorithm).is_empty(),
            "{algorithm} registered no paths"
        );
    }
}

#[test]
fn multipath_algorithms_beat_single_path_on_disjointness() {
    let mut sim = paper_sim(22, 20);
    sim.run_rounds(8).expect("rounds");

    let tlf_1sp = tlf_per_as_pair(&sim.registered_paths_by("1SP"));
    let tlf_hd = tlf_per_as_pair(&sim.registered_paths_by("HD"));
    assert!(!tlf_1sp.is_empty() && !tlf_hd.is_empty());

    let avg = |m: &BTreeMap<_, usize>| m.values().sum::<usize>() as f64 / m.len() as f64;
    let avg_1sp = avg(&tlf_1sp);
    let avg_hd = avg(&tlf_hd);
    assert!(
        avg_hd >= avg_1sp,
        "HD average TLF {avg_hd:.2} should be at least 1SP's {avg_1sp:.2}"
    );
    // 1SP registers a single path per (origin, interface-group) pair, so its typical TLF
    // stays near 1.
    assert!(
        avg_1sp < 3.0,
        "1SP average TLF unexpectedly high: {avg_1sp:.2}"
    );
}

#[test]
fn delay_optimization_never_loses_to_shortest_path_on_reachable_pairs() {
    let mut sim = paper_sim(23, 20);
    sim.run_rounds(8).expect("rounds");

    let d_1sp = as_pair_delays(&sim.registered_paths_by("1SP"));
    let d_don = as_pair_delays(&sim.registered_paths_by("DON"));
    assert!(!d_1sp.is_empty() && !d_don.is_empty());

    // On AS pairs both algorithms connect, DON's best delay is at most 1SP's (both pick from
    // the same beacon pool; DON optimizes the delay explicitly).
    let mut compared = 0usize;
    let mut don_better_or_equal = 0usize;
    for (pair, sp_delay) in &d_1sp {
        if let Some(don_delay) = d_don.get(pair) {
            compared += 1;
            if don_delay <= sp_delay {
                don_better_or_equal += 1;
            }
        }
    }
    assert!(compared > 0, "no comparable AS pairs");
    let fraction = don_better_or_equal as f64 / compared as f64;
    assert!(
        fraction > 0.9,
        "DON should match or beat 1SP on delay for most pairs, got {fraction:.2}"
    );
}

#[test]
fn registered_paths_respect_structural_invariants() {
    let mut sim = paper_sim(24, 16);
    sim.run_rounds(6).expect("rounds");
    let topology = Arc::clone(sim.topology());

    for path in sim.registered_paths() {
        // A registered path never starts and ends at the same AS.
        assert_ne!(path.holder, path.origin);
        // Hop count equals the number of traversed links.
        assert_eq!(path.links.len() as u32, path.metrics.hops);
        // Every traversed link references an interface that exists in the topology and is
        // owned by the AS recorded in the link key.
        for (asn, ifid) in &path.links {
            let interface = topology
                .interface(*asn, *ifid)
                .expect("link key references an existing interface");
            assert_eq!(interface.owner, *asn);
        }
        // No AS appears twice among the link keys (loop freedom of registered paths).
        let mut seen = std::collections::HashSet::new();
        for (asn, _) in &path.links {
            assert!(
                seen.insert(*asn),
                "AS {asn} appears twice on a registered path"
            );
        }
        // The paper's limit: at most 20 paths per (RAC, origin, interface group) —
        // checked globally per holder below.
    }

    // Per-key registration limit of 20.
    let mut per_key: BTreeMap<
        (
            irec_types::AsId,
            String,
            irec_types::AsId,
            irec_types::InterfaceGroupId,
        ),
        usize,
    > = BTreeMap::new();
    for path in sim.registered_paths() {
        *per_key
            .entry((path.holder, path.algorithm.clone(), path.origin, path.group))
            .or_default() += 1;
    }
    assert!(per_key.values().all(|&count| count <= 20));
}
