//! Acceptance tests for the work-item DAG round scheduler: a run with `--round-scheduler
//! dag` must be byte-identical to the sequential barrier run — same registered paths in
//! the same order, same overhead samples, same delivery accounting — for every pool width
//! × shard mix × random topology, and the PD campaign must reproduce its barrier results
//! when every per-pair simulation is DAG-scheduled.

use irec_core::{NodeConfig, RacConfig};
use irec_metrics::RegisteredPath;
use irec_sim::{DeliveryStats, PdCampaign, RoundScheduler, Simulation, SimulationConfig};
use irec_topology::{GeneratorConfig, TopologyGenerator};
use irec_types::AsId;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Everything observable about a finished run, for exact comparison.
#[derive(Debug, Clone, PartialEq)]
struct RunFingerprint {
    paths: Vec<RegisteredPath>,
    overhead_samples: Vec<u64>,
    stats: DeliveryStats,
    occupancy: usize,
}

const ROUNDS: usize = 2;

fn run(
    scheduler: RoundScheduler,
    workers: usize,
    ingress_shards: usize,
    path_shards: usize,
    ases: usize,
    seed: u64,
) -> RunFingerprint {
    let topology = Arc::new(
        TopologyGenerator::new(GeneratorConfig {
            num_ases: ases,
            seed,
            ..Default::default()
        })
        .generate(),
    );
    let mut sim = Simulation::new(
        topology,
        SimulationConfig::default()
            .with_round_scheduler(scheduler)
            .with_parallelism(workers)
            .with_delivery_parallelism(workers)
            .with_ingress_shards(ingress_shards)
            .with_path_shards(path_shards),
        move |_| {
            NodeConfig::default().with_racs(vec![
                RacConfig::static_rac("5SP", "5SP"),
                RacConfig::static_rac("HD", "HD"),
            ])
        },
    )
    .expect("simulation setup");
    sim.run_rounds(ROUNDS).expect("beaconing rounds");
    RunFingerprint {
        paths: sim.registered_paths(),
        overhead_samples: sim.overhead().samples(),
        stats: sim.delivery_stats(),
        occupancy: sim.ingress_occupancy(),
    }
}

/// The sequential barrier run every DAG run must reproduce, memoized per topology — the
/// property below revisits the same `(ases, seed)` points under many scheduler settings,
/// and re-deriving the authoritative reference each time would dominate the suite's
/// runtime.
fn barrier_reference(ases: usize, seed: u64) -> RunFingerprint {
    static CACHE: OnceLock<Mutex<HashMap<(usize, u64), RunFingerprint>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("reference cache lock");
    cache
        .entry((ases, seed))
        .or_insert_with(|| run(RoundScheduler::Barrier, 1, 1, 1, ases, seed))
        .clone()
}

proptest! {
    /// The headline property: for any random topology, any pool width in {1, 2, 4, 8}
    /// and any ingress/path shard mix over {1, 4, 7}, the DAG-scheduled run reproduces
    /// the sequential barrier run byte for byte.
    #[test]
    fn dag_runs_are_byte_identical_to_the_sequential_barrier(
        ases in 6usize..11,
        seed in 0u64..5,
        worker_index in 0usize..4,
        ingress_index in 0usize..3,
        path_index in 0usize..3,
    ) {
        let workers = [1usize, 2, 4, 8][worker_index];
        let ingress_shards = [1usize, 4, 7][ingress_index];
        let path_shards = [1usize, 4, 7][path_index];
        let reference = barrier_reference(ases, seed);
        prop_assert!(reference.stats.delivered > 0, "the scenario must deliver messages");
        let dag = run(
            RoundScheduler::Dag,
            workers,
            ingress_shards,
            path_shards,
            ases,
            seed,
        );
        prop_assert_eq!(
            &dag, &reference,
            "dag diverged at {} workers, ingress-shards {}, path-shards {}, \
             {} ASes, seed {}",
            workers, ingress_shards, path_shards, ases, seed
        );
    }
}

/// Everything deterministic about a campaign run (per-pair wall-clock excluded).
type CampaignFingerprint = Vec<(AsId, AsId, Vec<RegisteredPath>, usize, usize, Vec<u64>)>;

/// The stacked case: the PD campaign over a DAG-scheduled base, with DAG-scheduled
/// per-pair snapshots (snapshots inherit the base's scheduler config), parallel campaign
/// workers and non-power-of-two shard counts — must reproduce the fully sequential
/// barrier campaign byte for byte.
#[test]
fn pd_campaign_on_dag_scheduled_base_matches_barrier() {
    let warm = |scheduler: RoundScheduler, width: usize| {
        let topology = Arc::new(
            TopologyGenerator::new(GeneratorConfig {
                num_ases: 12,
                seed: 5,
                ..Default::default()
            })
            .generate(),
        );
        let mut sim = Simulation::new(
            topology,
            SimulationConfig::default()
                .with_round_scheduler(scheduler)
                .with_parallelism(width)
                .with_delivery_parallelism(width)
                .with_ingress_shards(7)
                .with_path_shards(7),
            |_| {
                NodeConfig::default().with_racs(vec![
                    RacConfig::static_rac("HD", "HD"),
                    RacConfig::on_demand_rac("on-demand"),
                ])
            },
        )
        .expect("simulation setup");
        sim.run_rounds(3).expect("warm-up rounds");
        sim
    };
    let campaign = |base: &Simulation, pd_parallelism: usize| -> CampaignFingerprint {
        let ids = base.topology().as_ids();
        let pairs = vec![
            (ids[0], ids[ids.len() - 1]),
            (ids[1], ids[ids.len() / 2]),
            (ids[ids.len() - 1], ids[0]),
        ];
        PdCampaign::new(pairs, 8)
            .with_rounds_per_iteration(2)
            .with_parallelism(pd_parallelism)
            .run(base)
            .expect("campaign run")
            .into_iter()
            .map(|pair| {
                (
                    pair.origin,
                    pair.target,
                    pair.result.paths,
                    pair.result.iterations,
                    pair.result.empty_iterations,
                    pair.pull_overhead,
                )
            })
            .collect()
    };

    let barrier_base = warm(RoundScheduler::Barrier, 1);
    let reference = campaign(&barrier_base, 1);
    assert!(
        reference
            .iter()
            .any(|(_, _, _, iterations, _, pull)| *iterations > 0 && !pull.is_empty()),
        "no pair ran a pull iteration — the stacked case no longer exercises the pull pipeline"
    );

    let dag_base = warm(RoundScheduler::Dag, 4);
    // The warm-up itself must agree before any campaign runs on top of it.
    assert_eq!(dag_base.registered_paths(), barrier_base.registered_paths());
    assert_eq!(dag_base.delivery_stats(), barrier_base.delivery_stats());
    for pd_parallelism in [1usize, 4] {
        assert_eq!(
            campaign(&dag_base, pd_parallelism),
            reference,
            "stacked DAG campaign diverged at pd-parallelism {pd_parallelism}"
        );
    }
}
