//! Workspace wiring smoke test.
//!
//! Asserts that every crate re-exported from the root `irec` facade resolves and that a
//! representative symbol from each is usable. This catches broken workspace manifests,
//! missing re-exports, and renamed public items at `cargo test` time, before anything
//! deeper runs.

use irec::{
    irec_algorithms, irec_core, irec_crypto, irec_irvm, irec_metrics, irec_pcb, irec_sim,
    irec_topology, irec_types, irec_wire,
};

#[test]
fn every_facade_crate_resolves_to_a_usable_symbol() {
    // types: identifier and geo primitives.
    let origin = irec_types::AsId(42);
    assert_eq!(origin.0, 42);
    let zero = irec_types::GeoCoord::new(0.0, 0.0);
    let one = irec_types::GeoCoord::new(1.0, 1.0);
    assert!(zero.distance_km(&one) > 0.0);

    // wire: varint round-trip via the public codec entry points.
    let mut buf = Vec::new();
    irec_wire::encode_varint(300, &mut buf);
    let (decoded, used) = irec_wire::decode_varint(&buf).expect("valid varint");
    assert_eq!((decoded, used), (300, buf.len()));

    // crypto: hashing is pure and deterministic.
    assert_eq!(
        irec_crypto::sha256(b"irec"),
        irec_crypto::sha256(b"irec"),
        "sha256 must be deterministic"
    );

    // pcb / core / sim / irvm / algorithms / metrics / topology: compile-time
    // resolution of one representative item each, plus cheap runtime checks where
    // construction is free.
    let _beacon_ty: Option<irec_pcb::Pcb> = None;
    let _node_ty: Option<irec_core::IrecNode> = None;
    let _sim_ty: Option<irec_sim::Simulation> = None;
    let limits = [irec_wire::MAX_FIELD_LEN, irec_irvm::MAX_CODE_LEN];
    assert!(limits.iter().all(|&l| l > 0));
    assert!(irec_algorithms::catalog::BUILTIN_NAMES.contains(&"5SP"));
    let cdf = irec_metrics::Cdf::new(vec![1.0, 2.0, 3.0]);
    assert_eq!(cdf.len(), 3);

    let topo = irec_topology::TopologyBuilder::new()
        .with_as(1, irec_topology::model::Tier::Tier1)
        .build();
    assert_eq!(topo.num_ases(), 1);
}

#[test]
fn varint_round_trips_across_the_u64_range() {
    for v in [
        0u64,
        1,
        127,
        128,
        16_383,
        16_384,
        u32::MAX as u64,
        u64::MAX - 1,
        u64::MAX,
    ] {
        let mut buf = Vec::new();
        irec_wire::encode_varint(v, &mut buf);
        assert_eq!(buf.len(), irec_wire::varint_len(v));
        let (decoded, used) = irec_wire::decode_varint(&buf).expect("round-trip");
        assert_eq!((decoded, used), (v, buf.len()));
    }
}
