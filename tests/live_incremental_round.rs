//! Acceptance tests for live incremental re-selection behind the simulation-config API:
//! with `--incremental-selection on` the per-node selection tables must leave every
//! observable output byte-identical to a from-scratch run — across both round schedulers,
//! every worker count and every ingress/path shard mix, over a seeded churn timeline —
//! while the [`IncrementalStats`] counters prove the tables actually reused work. A
//! zero-churn run pins the steady state: after the origination pattern warms up, the
//! per-round recompute count stays flat (fresh originations keep touching the
//! origin-neighbor batches, so it never drops to zero — but it must stop growing).

use irec_bench::workload::{churn_pass, churn_pass_incremental, ChurnFingerprint};
use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
use irec_sim::{
    ChurnConfig, IncrementalSelectionMode, RoundScheduler, Simulation, SimulationConfig,
};
use irec_topology::{GeneratorConfig, TopologyGenerator};
use std::sync::{Arc, OnceLock};

const ASES: usize = 10;
const STEPS: usize = 2;
const SEED: u64 = 5;
const CHURN_SEED: u64 = 13;

fn churn_config(rate: f64) -> ChurnConfig {
    ChurnConfig::default()
        .with_rate(rate)
        .with_seed(CHURN_SEED)
        .with_warmup_rounds(3)
}

/// The sequential, incremental-off barrier run every plane must reproduce, memoized per
/// churn rate index (0 → rate 1.0, 1 → rate 2.0).
fn reference(rate: f64) -> &'static ChurnFingerprint {
    static REFERENCE: [OnceLock<ChurnFingerprint>; 2] = [OnceLock::new(), OnceLock::new()];
    let slot = if rate == 1.0 { 0 } else { 1 };
    REFERENCE[slot].get_or_init(|| {
        churn_pass(
            ASES,
            STEPS,
            churn_config(rate),
            RoundScheduler::Barrier,
            1,
            1,
            1,
            SEED,
        )
    })
}

/// The full plane matrix: `on` must equal `off` byte for byte on every combination of
/// scheduler, worker count and shard mix, and at a nonzero churn rate it must recompute
/// strictly fewer selections than the from-scratch total (`reused + recomputed` is
/// exactly what a from-scratch run computes, so `reused > 0` ⟺ strictly fewer).
#[test]
fn incremental_on_matches_off_across_scheduler_worker_shard_planes() {
    for rate in [1.0, 2.0] {
        let expected = reference(rate);
        for scheduler in [RoundScheduler::Barrier, RoundScheduler::Dag] {
            for workers in [1, 4] {
                for shards in [1, 4, 7] {
                    let (fingerprint, stats) = churn_pass_incremental(
                        ASES,
                        STEPS,
                        churn_config(rate),
                        scheduler,
                        workers,
                        shards,
                        shards,
                        IncrementalSelectionMode::On,
                        SEED,
                    );
                    assert_eq!(
                        &fingerprint, expected,
                        "incremental run diverged at rate {rate} under {scheduler} \
                         x{workers} shards={shards}"
                    );
                    let from_scratch = stats.reused + stats.recomputed;
                    assert!(
                        stats.recomputed < from_scratch,
                        "incremental selection at rate {rate} under {scheduler} \
                         x{workers} shards={shards} recomputed every selection \
                         ({} of {from_scratch})",
                        stats.recomputed
                    );
                    assert!(
                        stats.invalidated > 0,
                        "a rate-{rate} churn timeline applied structural deltas, so the \
                         tables must have invalidated entries"
                    );
                }
            }
        }
    }
}

/// Asymmetric shard mixes — ingress and path shard counts that disagree — through both
/// schedulers, pinned against the same reference.
#[test]
fn incremental_on_matches_off_under_asymmetric_shard_mixes() {
    let expected = reference(1.0);
    for (scheduler, ingress, path) in [(RoundScheduler::Barrier, 4, 7), (RoundScheduler::Dag, 7, 4)]
    {
        let (fingerprint, _) = churn_pass_incremental(
            ASES,
            STEPS,
            churn_config(1.0),
            scheduler,
            4,
            ingress,
            path,
            IncrementalSelectionMode::On,
            SEED,
        );
        assert_eq!(
            &fingerprint, expected,
            "incremental run diverged under {scheduler} ingress={ingress} path={path}"
        );
    }
}

/// Zero churn: once the origination pattern has warmed up, the per-round recompute count
/// must go flat. Fresh originations keep refreshing the origin-neighbor batches, so the
/// steady-state recompute is nonzero — but a growing count would mean the
/// content-fingerprint guard stopped recognizing unchanged batches.
#[test]
fn zero_churn_recompute_goes_flat_after_warmup() {
    let config = GeneratorConfig {
        num_ases: ASES,
        seed: SEED,
        ..Default::default()
    };
    let mut sim = Simulation::new(
        Arc::new(TopologyGenerator::new(config).generate()),
        SimulationConfig::default().with_incremental_selection(IncrementalSelectionMode::On),
        |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
        },
    )
    .expect("simulation setup");

    let mut per_round = Vec::new();
    let mut previous = 0;
    for _ in 0..14 {
        sim.run_rounds(1).expect("beaconing round");
        let total = sim.incremental_stats().recomputed;
        per_round.push(total - previous);
        previous = total;
    }
    // The recompute count climbs while beacons are still discovering paths, then decays
    // monotonically as batches settle, and finally flattens at the origination floor.
    let peak = per_round
        .iter()
        .position(|&r| r == *per_round.iter().max().expect("nonempty trace"))
        .expect("peak exists");
    assert!(
        per_round[peak..].windows(2).all(|w| w[1] <= w[0]),
        "per-round recompute grew again after its peak: {per_round:?}"
    );
    let steady = &per_round[per_round.len() - 3..];
    assert!(
        steady.iter().all(|&r| r == steady[0]) && steady[0] > 0,
        "per-round recompute never flattened at a nonzero origination floor: {per_round:?}"
    );
    assert!(
        sim.incremental_stats().reused > 0,
        "a warmed zero-churn run must reuse the batches the round left untouched"
    );
}
