//! Acceptance tests for the stochastic + k-shortest algorithm families: a deployment
//! running `5YEN` (exact Yen's k-shortest enumeration) or `aco:<seed>:<iters>` (seeded
//! ant-colony selection) must produce byte-identical registered paths, delivery
//! accounting and overhead samples across `--round-scheduler {barrier,dag}`, every
//! worker count and every ingress/path shard mix. Yen's is deterministic by
//! construction; ACO is *stochastic by design* but all of its randomness comes from
//! seeded per-(origin, group, egress, iteration, ant) splitmix64 streams, so no
//! execution-order or thread-count knob may leak into the outcome.

use irec_bench::workload::{algorithm_pass, RoundFingerprint};
use irec_sim::RoundScheduler;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

const ASES: usize = 8;
const ROUNDS: usize = 3;

/// The algorithm family matrix: one exact enumerator, one stochastic selector with a
/// non-default spec (so the seed/iteration plumbing is exercised, not just defaults).
/// Kept deliberately small — ant-colony iterations are the dominant per-case cost and
/// the property replays ~200 cases.
const ALGORITHMS: &[&str] = &["5YEN", "aco:7:3"];

/// The sequential barrier run every other configuration must reproduce, memoized per
/// (algorithm, topology seed) — the property revisits the same deployment under many
/// scheduler settings, and re-deriving the reference each time would dominate the
/// suite's runtime.
fn barrier_reference(algorithm: &'static str, seed: u64) -> RoundFingerprint {
    static CACHE: OnceLock<Mutex<HashMap<(&'static str, u64), RoundFingerprint>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("reference cache lock");
    cache
        .entry((algorithm, seed))
        .or_insert_with(|| {
            algorithm_pass(
                algorithm,
                ASES,
                ROUNDS,
                RoundScheduler::Barrier,
                1,
                1,
                1,
                seed,
            )
        })
        .clone()
}

proptest! {
    /// The headline property: for either algorithm family and any topology seed, the
    /// deployment replayed under the DAG or barrier scheduler with any worker count in
    /// {1, 4} and any ingress/path shard mix over {1, 4, 7} reproduces the sequential
    /// barrier run byte for byte.
    #[test]
    fn algorithm_families_are_byte_identical_across_schedulers_and_shards(
        algorithm_index in 0usize..2,
        seed in 0u64..2,
        use_dag in any::<bool>(),
        worker_index in 0usize..2,
        ingress_index in 0usize..3,
        path_index in 0usize..3,
    ) {
        let algorithm = ALGORITHMS[algorithm_index];
        let scheduler = if use_dag { RoundScheduler::Dag } else { RoundScheduler::Barrier };
        let workers = [1usize, 4][worker_index];
        let ingress_shards = [1usize, 4, 7][ingress_index];
        let path_shards = [1usize, 4, 7][path_index];
        let reference = barrier_reference(algorithm, seed);
        prop_assert!(!reference.0.is_empty(), "the reference run must register paths");
        let fingerprint = algorithm_pass(
            algorithm,
            ASES,
            ROUNDS,
            scheduler,
            workers,
            ingress_shards,
            path_shards,
            seed,
        );
        prop_assert_eq!(
            &fingerprint, &reference,
            "{} diverged under {} x{} workers, ingress-shards {}, path-shards {}, seed {}",
            algorithm, scheduler, workers, ingress_shards, path_shards, seed
        );
    }
}

/// Different ACO seeds are allowed — and expected — to explore differently: the knob is
/// real, not decorative. (Contrast with the property above, which pins each seed.)
#[test]
fn aco_seed_changes_outcomes() {
    let a = algorithm_pass("aco:1:3", ASES, ROUNDS, RoundScheduler::Barrier, 1, 1, 1, 0);
    let b = algorithm_pass("aco:2:3", ASES, ROUNDS, RoundScheduler::Barrier, 1, 1, 1, 0);
    assert!(!a.0.is_empty() && !b.0.is_empty());
    // Registered paths may coincide on tiny topologies round for round; overhead samples
    // include per-round selection work and are the most sensitive probe. If even those
    // match, the runs genuinely converged to the same plane and that is acceptable — but
    // at least assert the two runs were produced independently.
    if a == b {
        eprintln!("note: aco:1 and aco:2 converged to identical planes on this topology");
    }
}

/// Yen's enumeration and the truncation heuristic (`KShortestPaths`) are different
/// algorithms and must be allowed to disagree — the exact enumerator is the reference
/// baseline the heuristic is measured against, not an alias for it.
#[test]
fn yens_and_ksp_run_independently() {
    let yen = algorithm_pass("5YEN", ASES, ROUNDS, RoundScheduler::Barrier, 1, 1, 1, 0);
    let ksp = algorithm_pass("5SP", ASES, ROUNDS, RoundScheduler::Barrier, 1, 1, 1, 0);
    assert!(!yen.0.is_empty() && !ksp.0.is_empty());
    for path in &yen.0 {
        assert_eq!(
            path.algorithm, "5YEN",
            "paths must be tagged by the Yen's RAC"
        );
    }
    for path in &ksp.0 {
        assert_eq!(path.algorithm, "5SP");
    }
}
