//! Acceptance tests for the parallel message-delivery plane: a simulation run with
//! `--delivery-parallelism > 1` must be byte-identical to a sequential run — same
//! registered paths in the same order, same delivered/dropped/rejected counters, same
//! ingress occupancy — on the fig6-scale workload (generated topology, the paper's
//! five-RAC deployment) and under failure injection.

use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
use irec_metrics::RegisteredPath;
use irec_sim::{DeliveryStats, Simulation, SimulationConfig};
use irec_topology::builder::{figure1, figure1_topology};
use irec_topology::{GeneratorConfig, TopologyGenerator};
use std::sync::Arc;

/// Everything observable about a finished run, for exact comparison.
#[derive(PartialEq, Debug)]
struct RunFingerprint {
    paths: Vec<RegisteredPath>,
    overhead_samples: Vec<u64>,
    stats: DeliveryStats,
    occupancy: usize,
}

fn fingerprint(sim: &Simulation) -> RunFingerprint {
    RunFingerprint {
        paths: sim.registered_paths(),
        overhead_samples: sim.overhead().samples(),
        stats: sim.delivery_stats(),
        occupancy: sim.ingress_occupancy(),
    }
}

/// The fig6 smoke workload: a 12-AS generated topology beaconing for 3 rounds with the
/// paper's static RAC set.
fn run_fig6_workload(delivery_parallelism: usize, ingress_shards: usize) -> RunFingerprint {
    let topology = Arc::new(
        TopologyGenerator::new(GeneratorConfig {
            num_ases: 12,
            seed: 5,
            ..Default::default()
        })
        .generate(),
    );
    let mut sim = Simulation::new(
        topology,
        SimulationConfig::default()
            .with_delivery_parallelism(delivery_parallelism)
            .with_ingress_shards(ingress_shards),
        move |_| {
            NodeConfig::default().with_racs(vec![
                RacConfig::static_rac("1SP", "1SP"),
                RacConfig::static_rac("5SP", "5SP"),
                RacConfig::static_rac("HD", "HD"),
                RacConfig::static_rac("DON", "DO"),
            ])
        },
    )
    .expect("simulation setup");
    sim.run_rounds(3).expect("beaconing rounds");
    fingerprint(&sim)
}

/// The headline acceptance criterion: `--delivery-parallelism 4` is byte-identical to
/// `--delivery-parallelism 1` on the fig6 workload — for ingress shard counts 1 and 4
/// alike (the parallel case drives the sharded apply stage across real shard boundaries).
#[test]
fn delivery_parallelism_is_byte_identical_on_fig6_workload() {
    let sequential = run_fig6_workload(1, 1);
    assert!(
        !sequential.paths.is_empty(),
        "the scenario must register paths"
    );
    assert!(sequential.stats.delivered > 0);
    for ingress_shards in [1usize, 4] {
        for parallelism in [2, 4, 8] {
            let parallel = run_fig6_workload(parallelism, ingress_shards);
            assert_eq!(
                parallel, sequential,
                "delivery-parallelism {parallelism} with {ingress_shards} ingress shards \
                 diverged from sequential"
            );
        }
    }
}

/// Same guarantee with failure injection: a removed node exercises the `dropped_no_node`
/// path, and the split counters stay identical across worker counts.
#[test]
fn delivery_parallelism_is_byte_identical_under_failure_injection() {
    let run = |delivery_parallelism: usize| {
        let mut sim = Simulation::new(
            Arc::new(figure1_topology()),
            SimulationConfig::default().with_delivery_parallelism(delivery_parallelism),
            |_| {
                NodeConfig::default()
                    .with_policy(PropagationPolicy::All)
                    .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
            },
        )
        .expect("simulation setup");
        sim.run_rounds(2).expect("beaconing rounds");
        sim.remove_node(figure1::X);
        sim.run_rounds(2).expect("beaconing rounds after failure");
        fingerprint(&sim)
    };
    let sequential = run(1);
    assert!(
        sequential.stats.dropped_no_node > 0,
        "the removed AS must lose in-flight messages"
    );
    let parallel = run(4);
    assert_eq!(parallel, sequential);
}

/// Both delivery-plane and node-phase/RAC-engine parallelism stacked together still
/// reproduce the sequential output — for any ingress shard count. With
/// `delivery_parallelism > 1` this exercises the delivery plane's *sharded apply stage*
/// (per-`(node, shard)` commit inboxes over scoped workers), which must be byte-identical
/// to the serial apply walk.
#[test]
fn stacked_parallelism_is_byte_identical() {
    let run = |parallelism: usize, delivery_parallelism: usize, ingress_shards: usize| {
        let mut sim = Simulation::new(
            Arc::new(figure1_topology()),
            SimulationConfig::default()
                .with_parallelism(parallelism)
                .with_delivery_parallelism(delivery_parallelism)
                .with_ingress_shards(ingress_shards),
            move |_| {
                NodeConfig::paper_simulation(false)
                    .with_policy(PropagationPolicy::All)
                    .with_parallelism(parallelism)
            },
        )
        .expect("simulation setup");
        sim.run_rounds(4).expect("beaconing rounds");
        fingerprint(&sim)
    };
    let sequential = run(1, 1, 1);
    assert!(!sequential.paths.is_empty());
    let parallel = run(4, 4, 1);
    assert_eq!(parallel, sequential);
    // The headline stacked-shards criterion: `--ingress-shards {1, 4}` (plus a
    // non-power-of-two) stacked with `--parallelism 4 --delivery-parallelism 4`.
    for ingress_shards in [4usize, 7] {
        let sharded = run(4, 4, ingress_shards);
        assert_eq!(
            sharded, sequential,
            "ingress-shards {ingress_shards} diverged under stacked parallelism"
        );
    }
}
