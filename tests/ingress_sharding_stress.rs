//! Concurrency stress tests for the sharded ingress database: a hot-origin workload (one
//! origin emitting batches far beyond the engine's 512-candidate split threshold, next to a
//! handful of background origins) hammered from scoped threads. The database must lose no
//! insert, deduplicate exactly once per digest under racing double-inserts, and report
//! exact occupancy afterwards — concurrent sweeps included.

use irec_core::{IngressGateway, ShardedIngressDb};
use irec_crypto::{KeyRegistry, Verifier};
use irec_pcb::{Pcb, PcbExtensions};
use irec_types::{AsId, IfId, InterfaceGroupId, SimDuration, SimTime};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The hot origin: one |Φ| well above `irec_core::BATCH_SPLIT_THRESHOLD` (512).
const HOT_ORIGIN: AsId = AsId(7);
const HOT_BATCH: u64 = 600;
/// Background origins with small batches, so the workload crosses shard boundaries.
const BACKGROUND_ORIGINS: u64 = 7;
const BACKGROUND_BATCH: u64 = 24;

/// The full workload: `HOT_BATCH` distinct beacons from the hot origin plus
/// `BACKGROUND_ORIGINS * BACKGROUND_BATCH` from the background origins. Origination-only
/// PCBs — the database never verifies signatures, digests vary by `(origin, seq)`.
fn workload() -> Vec<Pcb> {
    let mut beacons = Vec::new();
    let expiry = SimTime::ZERO + SimDuration::from_hours(6);
    for seq in 0..HOT_BATCH {
        beacons.push(Pcb::originate(
            HOT_ORIGIN,
            seq,
            SimTime::ZERO,
            expiry,
            PcbExtensions::none(),
        ));
    }
    for origin in 1..=BACKGROUND_ORIGINS {
        if origin == HOT_ORIGIN.value() {
            continue;
        }
        for seq in 0..BACKGROUND_BATCH {
            beacons.push(Pcb::originate(
                AsId(origin),
                seq,
                SimTime::ZERO,
                expiry,
                PcbExtensions::none(),
            ));
        }
    }
    beacons
}

fn distinct_count() -> usize {
    (HOT_BATCH + (BACKGROUND_ORIGINS - 1) * BACKGROUND_BATCH) as usize
}

/// Scoped threads hammer `insert` round-robin — every beacon is raced by **two** threads,
/// so exactly one of each pair must win the dedup — while another thread runs concurrent
/// eviction sweeps (no-ops at t=0, but they exercise the same shard locks). No insert may
/// be lost and the occupancy must be exact.
#[test]
fn hot_origin_hammering_loses_no_inserts() {
    for shards in [1usize, 4, 7, 16] {
        let db = ShardedIngressDb::new(shards);
        let beacons = workload();
        let accepted = AtomicUsize::new(0);
        let duplicates = AtomicUsize::new(0);
        let writers = 8usize;
        std::thread::scope(|scope| {
            for writer in 0..writers {
                let db = &db;
                let beacons = &beacons;
                let accepted = &accepted;
                let duplicates = &duplicates;
                scope.spawn(move || {
                    // Writers w and w+4 insert the same half of the workload: every beacon
                    // is attempted exactly twice, by two different threads.
                    for (index, pcb) in beacons.iter().enumerate() {
                        if index % (writers / 2) != writer % (writers / 2) {
                            continue;
                        }
                        if db.insert(pcb.clone(), IfId(1), SimTime::ZERO) {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        } else {
                            duplicates.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            // A concurrent sweeper: eviction at t=0 with no grace never evicts (nothing is
            // expired), but it takes and releases every shard's write lock repeatedly.
            let db = &db;
            scope.spawn(move || {
                for _ in 0..50 {
                    assert_eq!(db.evict_expired(SimTime::ZERO, SimDuration::ZERO), 0);
                }
            });
        });

        let distinct = distinct_count();
        assert_eq!(
            accepted.load(Ordering::Relaxed),
            distinct,
            "lost or double-counted inserts at {shards} shards"
        );
        assert_eq!(duplicates.load(Ordering::Relaxed), distinct);
        assert_eq!(db.len(), distinct, "occupancy at {shards} shards");
        assert_eq!(db.live_len(SimTime::ZERO), distinct);

        // The hot batch is complete and still one batch (oversized batches split into
        // engine work items, not into storage fragments).
        let hot_key = irec_core::beacon_db::BatchKey {
            origin: HOT_ORIGIN,
            group: InterfaceGroupId::DEFAULT,
            target: None,
        };
        assert_eq!(
            db.beacons_for(&hot_key, SimTime::ZERO).len(),
            HOT_BATCH as usize
        );
        assert_eq!(db.batch_keys().len(), BACKGROUND_ORIGINS as usize);

        // A final full sweep drains exactly what was stored.
        assert_eq!(db.evict_expired(SimTime::MAX, SimDuration::ZERO), distinct);
        assert!(db.is_empty());
    }
}

/// The same workload through the ingress gateway's sharded commit path: per-shard inboxes
/// committed from scoped threads (the delivery plane's apply-stage shape), with stats
/// reduced over shards. Aggregate stats must equal a serial single-shard run.
#[test]
fn sharded_gateway_commits_match_serial_reference() {
    let registry = KeyRegistry::with_ases(3, 16);
    let beacons = workload();

    // Serial single-shard reference. Verdicts are precomputed `Ok` — the stress targets
    // the commit path, not signature verification.
    let reference = IngressGateway::new(AsId(99), Verifier::new(registry.clone()));
    for pcb in &beacons {
        let _ = reference.commit(pcb.clone(), IfId(1), SimTime::ZERO, Ok(()));
        // Every beacon is also committed a second time, as in the racing test.
        let _ = reference.commit(pcb.clone(), IfId(1), SimTime::ZERO, Ok(()));
    }

    for shards in [2usize, 7, 16] {
        let gateway =
            IngressGateway::with_shards(AsId(99), Verifier::new(registry.clone()), shards);
        // Partition into per-shard inboxes (delivery order preserved within a shard), then
        // commit every inbox on its own thread — twice, so dedup races within a shard too.
        let mut inboxes: Vec<Vec<&Pcb>> = vec![Vec::new(); shards];
        for pcb in &beacons {
            inboxes[gateway.db().shard_of(pcb.origin)].push(pcb);
        }
        std::thread::scope(|scope| {
            for (shard, inbox) in inboxes.iter().enumerate() {
                let gateway = &gateway;
                scope.spawn(move || {
                    for pcb in inbox {
                        for _ in 0..2 {
                            let _ = gateway.commit_in_shard(
                                shard,
                                (*pcb).clone(),
                                IfId(1),
                                SimTime::ZERO,
                                Ok(()),
                            );
                        }
                    }
                });
            }
        });
        assert_eq!(
            gateway.stats(),
            reference.stats(),
            "stats at {shards} shards"
        );
        assert_eq!(gateway.db().len(), reference.db().len());
        assert_eq!(gateway.db().batch_keys(), reference.db().batch_keys());
    }
    assert_eq!(reference.stats().accepted as usize, distinct_count());
    assert_eq!(reference.stats().duplicates as usize, distinct_count());
    assert_eq!(reference.stats().rejected, 0);
}
