//! Acceptance tests for the parallel PD campaign engine and the destination-sharded path
//! service: campaign results for `--pd-parallelism {1,4}` × `--path-shards {1,4,7}` must
//! be byte-identical to the sequential unsharded run — same per-pair paths in the same
//! order, same iteration counts, same pull-overhead samples — and the campaign facade must
//! equal a hand-rolled sequential workflow-per-snapshot loop.

use irec_core::{NodeConfig, RacConfig};
use irec_metrics::RegisteredPath;
use irec_sim::{PdCampaign, PdWorkflow, Simulation, SimulationConfig};
use irec_topology::{GeneratorConfig, Tier, TopologyBuilder, TopologyGenerator};
use irec_types::{AsId, Bandwidth, Latency};
use std::sync::Arc;

const WARM_ROUNDS: usize = 3;
const ROUNDS_PER_ITERATION: usize = 2;
/// Must exceed the HD seed count of the warmed pairs, or the workflows finish on their
/// seeds alone and the pull pipeline is never exercised (the matrix test asserts this).
const MAX_PATHS: usize = 8;

/// The campaign workload: a 12-AS generated topology with the paper's HD + on-demand
/// deployment, warmed so HD has seeded paths. `delivery_parallelism > 1` routes the
/// per-pair simulations' pull returns through the delivery plane's concurrent
/// per-`(destination, path shard)` commit inboxes.
fn warm_base(path_shards: usize, delivery_parallelism: usize) -> Simulation {
    let topology = Arc::new(
        TopologyGenerator::new(GeneratorConfig {
            num_ases: 12,
            seed: 5,
            ..Default::default()
        })
        .generate(),
    );
    let mut sim = Simulation::new(
        topology,
        SimulationConfig::default()
            .with_delivery_parallelism(delivery_parallelism)
            .with_path_shards(path_shards),
        move |_| {
            NodeConfig::default().with_racs(vec![
                RacConfig::static_rac("HD", "HD"),
                RacConfig::on_demand_rac("on-demand"),
            ])
        },
    )
    .expect("simulation setup");
    sim.run_rounds(WARM_ROUNDS).expect("warm-up rounds");
    sim
}

/// Fixed pairs spanning the topology (including a duplicated pair, which must be safe).
fn pairs(base: &Simulation) -> Vec<(AsId, AsId)> {
    let ids = base.topology().as_ids();
    vec![
        (ids[0], ids[ids.len() - 1]),
        (ids[1], ids[ids.len() / 2]),
        (ids[ids.len() - 1], ids[0]),
        (ids[0], ids[ids.len() - 1]),
    ]
}

/// Everything deterministic about a campaign run (per-pair wall-clock excluded).
type CampaignFingerprint = Vec<(AsId, AsId, Vec<RegisteredPath>, usize, usize, Vec<u64>)>;

fn run_campaign(
    path_shards: usize,
    pd_parallelism: usize,
    delivery_parallelism: usize,
) -> CampaignFingerprint {
    run_campaign_mode(path_shards, pd_parallelism, delivery_parallelism, false)
}

fn run_campaign_mode(
    path_shards: usize,
    pd_parallelism: usize,
    delivery_parallelism: usize,
    deep_clone: bool,
) -> CampaignFingerprint {
    let base = warm_base(path_shards, delivery_parallelism);
    let results = PdCampaign::new(pairs(&base), MAX_PATHS)
        .with_rounds_per_iteration(ROUNDS_PER_ITERATION)
        .with_parallelism(pd_parallelism)
        .with_deep_clone(deep_clone)
        .run(&base)
        .expect("campaign run");
    fingerprint(results)
}

fn fingerprint(results: Vec<irec_sim::PdPairResult>) -> CampaignFingerprint {
    results
        .into_iter()
        .map(|pair| {
            (
                pair.origin,
                pair.target,
                pair.result.paths,
                pair.result.iterations,
                pair.result.empty_iterations,
                pair.pull_overhead,
            )
        })
        .collect()
}

/// The headline acceptance criterion: every `--pd-parallelism {1,4}` × `--path-shards
/// {1,4,7}` combination reproduces the sequential unsharded campaign byte for byte —
/// including with the delivery plane's verify/apply pipeline parallel, which routes the
/// pull returns through the concurrent per-`(destination, path shard)` commit inboxes.
#[test]
fn pd_campaign_matrix_is_byte_identical_to_sequential_unsharded() {
    let sequential = run_campaign(1, 1, 1);
    assert!(
        sequential.iter().any(|(_, _, paths, ..)| !paths.is_empty()),
        "the campaign must discover paths"
    );
    // The guarantee is only meaningful if the pull pipeline actually runs: at least one
    // pair must iterate past its HD seeds and originate pull beacons.
    assert!(
        sequential
            .iter()
            .any(|(_, _, _, iterations, _, pull_overhead)| *iterations > 0
                && !pull_overhead.is_empty()),
        "no pair ran a pull iteration — raise MAX_PATHS above the HD seed count"
    );
    for path_shards in [1usize, 4, 7] {
        for pd_parallelism in [1usize, 4] {
            for delivery_parallelism in [1usize, 4] {
                if (path_shards, pd_parallelism, delivery_parallelism) == (1, 1, 1) {
                    continue;
                }
                let run = run_campaign(path_shards, pd_parallelism, delivery_parallelism);
                assert_eq!(
                    run, sequential,
                    "campaign diverged at pd-parallelism {pd_parallelism}, \
                     path-shards {path_shards}, delivery-parallelism {delivery_parallelism}"
                );
            }
        }
    }
}

/// The campaign facade equals the hand-rolled sequential loop it replaces: one
/// `PdWorkflow` per pair, each on its own snapshot of the warm base, harvested in pair
/// order. (Disjoint per-pair algorithm-id ranges mirror what the campaign does
/// internally — concurrent publishers into the shared store must not collide, and the
/// sequential reference must publish the same ids to fetch the same modules.)
#[test]
fn pd_campaign_equals_manual_sequential_snapshot_loop() {
    let base = warm_base(1, 1);
    let pairs = pairs(&base);

    let manual: CampaignFingerprint = pairs
        .iter()
        .enumerate()
        .map(|(index, &(origin, target))| {
            let mut sim = base.clone();
            let mut workflow = PdWorkflow::new(origin, target, MAX_PATHS)
                .with_rounds_per_iteration(ROUNDS_PER_ITERATION)
                .with_algorithm_id_base(1_000 + index as u64 * 1_000_000);
            let result = workflow.run(&mut sim).expect("workflow run");
            (
                origin,
                target,
                result.paths,
                result.iterations,
                result.empty_iterations,
                sim.overhead_pull().nonzero_samples(),
            )
        })
        .collect();

    let campaign: CampaignFingerprint = PdCampaign::new(pairs, MAX_PATHS)
        .with_rounds_per_iteration(ROUNDS_PER_ITERATION)
        .with_parallelism(4)
        .run(&base)
        .expect("campaign run")
        .into_iter()
        .map(|pair| {
            (
                pair.origin,
                pair.target,
                pair.result.paths,
                pair.result.iterations,
                pair.result.empty_iterations,
                pair.pull_overhead,
            )
        })
        .collect();
    assert_eq!(campaign, manual);
}

/// Campaign runs never mutate the shared base: registered paths, clock and delivery
/// accounting stay untouched, so one warm base can serve many campaigns (and many
/// parallelism settings) in a row.
#[test]
fn pd_campaign_leaves_the_base_simulation_untouched() {
    let base = warm_base(4, 4);
    let before_paths = base.registered_paths();
    let before_rounds = base.rounds_run();
    let before_stats = base.delivery_stats();
    for pd_parallelism in [1usize, 4] {
        PdCampaign::new(pairs(&base), MAX_PATHS)
            .with_rounds_per_iteration(ROUNDS_PER_ITERATION)
            .with_parallelism(pd_parallelism)
            .run(&base)
            .expect("campaign run");
    }
    assert_eq!(base.registered_paths(), before_paths);
    assert_eq!(base.rounds_run(), before_rounds);
    assert_eq!(base.delivery_stats(), before_stats);
}

/// The copy-on-write snapshot path (the campaign default) reproduces the deep-clone
/// reference implementation byte for byte across the whole acceptance matrix:
/// `--pd-parallelism {1,4}` × `--path-shards {1,4,7}`.
#[test]
fn cow_snapshots_match_deep_clone_across_the_matrix() {
    for path_shards in [1usize, 4, 7] {
        for pd_parallelism in [1usize, 4] {
            let cow = run_campaign_mode(path_shards, pd_parallelism, 1, false);
            let deep = run_campaign_mode(path_shards, pd_parallelism, 1, true);
            assert_eq!(
                cow, deep,
                "COW and deep-clone campaigns diverged at pd-parallelism \
                 {pd_parallelism}, path-shards {path_shards}"
            );
        }
    }
}

/// On a disconnected topology, the reachability pre-pass restricts each pair's snapshot
/// to the origin's connected component — and the campaign output still matches the
/// deep-clone run, which keeps every node. The other component's ASes can never exchange
/// a message with the origin's component, so leaving them out is unobservable in the
/// campaign fingerprint.
#[test]
fn reachability_restricted_snapshots_match_deep_clone_on_disconnected_topology() {
    // Component A: a diamond 1 — {2, 4} — 3 (two disjoint 1↔3 paths, so the pull
    // workflow has something to discover); component B: 10 — 11. No links across.
    let latency = Latency::from_millis(10);
    let bandwidth = Bandwidth::from_mbps(100);
    let topology = Arc::new(
        TopologyBuilder::new()
            .with_as(1, Tier::Tier2)
            .with_as(2, Tier::Tier2)
            .with_as(3, Tier::Tier2)
            .with_as(4, Tier::Tier2)
            .with_as(10, Tier::Tier2)
            .with_as(11, Tier::Tier2)
            .link(1, 2, latency, bandwidth)
            .link(2, 3, latency, bandwidth)
            .link(1, 4, latency, bandwidth)
            .link(4, 3, latency, bandwidth)
            .link(10, 11, latency, bandwidth)
            .build(),
    );
    let mut base = Simulation::new(Arc::clone(&topology), SimulationConfig::default(), |_| {
        NodeConfig::default()
                .with_racs(vec![
                    RacConfig::static_rac("HD", "HD"),
                    RacConfig::on_demand_rac("on-demand"),
                ])
                // All links here are peer links; the default valley-free policy would
                // block every peer→peer export and nothing would propagate.
                .with_policy(irec_core::PropagationPolicy::All)
    })
    .expect("simulation setup");
    base.run_rounds(WARM_ROUNDS).expect("warm-up rounds");

    // The pre-pass sees exactly component A from AS 1, component B from AS 10.
    let component_a: Vec<AsId> = base.reachable_component(AsId(1)).into_iter().collect();
    assert_eq!(component_a, vec![AsId(1), AsId(2), AsId(3), AsId(4)]);
    let component_b: Vec<AsId> = base.reachable_component(AsId(10)).into_iter().collect();
    assert_eq!(component_b, vec![AsId(10), AsId(11)]);

    // Pairs inside each component; cross-component pairs cannot discover anything, which
    // both modes must agree on too.
    let pairs = vec![
        (AsId(1), AsId(3)),
        (AsId(3), AsId(1)),
        (AsId(10), AsId(11)),
        (AsId(1), AsId(11)), // unreachable target: must converge empty in both modes
    ];
    for pd_parallelism in [1usize, 4] {
        let cow = fingerprint(
            PdCampaign::new(pairs.clone(), MAX_PATHS)
                .with_rounds_per_iteration(ROUNDS_PER_ITERATION)
                .with_parallelism(pd_parallelism)
                .run(&base)
                .expect("COW campaign run"),
        );
        let deep = fingerprint(
            PdCampaign::new(pairs.clone(), MAX_PATHS)
                .with_rounds_per_iteration(ROUNDS_PER_ITERATION)
                .with_parallelism(pd_parallelism)
                .with_deep_clone(true)
                .run(&base)
                .expect("deep-clone campaign run"),
        );
        assert_eq!(
            cow, deep,
            "restricted COW snapshot diverged from deep clone at pd-parallelism \
             {pd_parallelism}"
        );
        assert!(
            cow.iter().any(|(_, _, paths, ..)| !paths.is_empty()),
            "in-component pairs must discover paths"
        );
    }
}
