//! Integration tests reproducing the paper's running examples (Fig. 1, Examples #1 and #2,
//! and the shortest-widest on-demand scenario of Fig. 2c) end to end across the crates:
//! topology → beaconing simulation → RACs → path service → endpoint selection.

use irec_core::{NodeConfig, OriginationSpec, PropagationPolicy, RacConfig};
use irec_pcb::PcbExtensions;
use irec_sim::{Simulation, SimulationConfig};
use irec_topology::builder::{figure1, figure1_topology};
use irec_types::{AlgorithmId, Bandwidth, IfId, Latency};
use std::sync::Arc;

fn figure1_simulation(racs: Vec<RacConfig>) -> Simulation {
    let topology = Arc::new(figure1_topology());
    Simulation::new(topology, SimulationConfig::default(), move |_| {
        NodeConfig::default()
            .with_policy(PropagationPolicy::All)
            .with_racs(racs.clone())
    })
    .expect("simulation setup")
}

/// Example #1: the VoIP application gets the 20 ms path, the file-transfer application gets a
/// path at least an order of magnitude wider than the shortest path's 10 Mbps.
#[test]
fn example1_voip_and_file_transfer_get_different_optimal_paths() {
    let mut sim = figure1_simulation(vec![
        RacConfig::static_rac("DO", "DO"),
        RacConfig::static_rac("widest", "widest"),
    ]);
    sim.run_rounds(6).expect("rounds");

    let src = sim.node(figure1::SRC).expect("source node");
    let voip = src
        .path_service()
        .paths_to_by(figure1::DST, "DO")
        .into_iter()
        .min_by_key(|p| p.metrics.latency)
        .expect("delay-optimized path");
    // The lowest-latency Src->Dst path is 2 links x 10 ms = 20 ms.
    assert_eq!(voip.metrics.latency, Latency::from_millis(20));

    let bulk = src
        .path_service()
        .paths_to_by(figure1::DST, "widest")
        .into_iter()
        .max_by_key(|p| p.metrics.bandwidth)
        .expect("bandwidth-optimized path");
    assert!(bulk.metrics.bandwidth >= Bandwidth::from_mbps(100));
    // The two applications end up on different paths.
    assert!(bulk.metrics.bandwidth > voip.metrics.bandwidth || bulk.links != voip.links);
}

/// Example #2: only an on-demand algorithm (widest path subject to a 30 ms bound) discovers
/// the live-video path; it is the 30 ms / 100 Mbps path via Y, not the 20 ms thin path and
/// not the 40 ms wide path.
#[test]
fn example2_live_video_needs_the_on_demand_bounded_criterion() {
    let mut sim = figure1_simulation(vec![
        RacConfig::static_rac("DO", "DO"),
        RacConfig::static_rac("widest", "widest"),
        RacConfig::on_demand_rac("on-demand"),
    ]);
    sim.run_rounds(4).expect("warm-up");

    let bound = Latency::from_millis(30);
    let program = irec_irvm::programs::bounded_latency_widest(bound, 5);
    let reference = sim
        .node(figure1::DST)
        .unwrap()
        .publish_algorithm(AlgorithmId(7), &program);
    let dst_interfaces: Vec<IfId> = sim
        .topology()
        .as_node(figure1::DST)
        .unwrap()
        .interfaces
        .keys()
        .copied()
        .collect();
    sim.node_mut(figure1::DST).unwrap().add_origination(
        OriginationSpec::plain(dst_interfaces)
            .with_extensions(PcbExtensions::none().with_algorithm(reference)),
    );
    sim.run_rounds(6).expect("on-demand rounds");

    let src = sim.node(figure1::SRC).unwrap();
    let live: Vec<_> = src
        .path_service()
        .paths_to_by(figure1::DST, "on-demand")
        .into_iter()
        .filter(|p| p.metrics.latency <= bound)
        .collect();
    assert!(
        !live.is_empty(),
        "the on-demand criterion must discover a bounded-latency path"
    );
    let best = live.iter().max_by_key(|p| p.metrics.bandwidth).unwrap();
    assert_eq!(best.metrics.latency, Latency::from_millis(30));
    assert!(best.metrics.bandwidth >= Bandwidth::from_mbps(100));
}

/// Fig. 2c: the shortest-widest on-demand algorithm selects the lowest-latency path among
/// the highest-bandwidth ones.
#[test]
fn shortest_widest_on_demand_algorithm_runs_across_the_network() {
    let mut sim = figure1_simulation(vec![RacConfig::on_demand_rac("on-demand")]);

    let program = irec_irvm::programs::shortest_widest(5);
    let reference = sim
        .node(figure1::DST)
        .unwrap()
        .publish_algorithm(AlgorithmId(9), &program);
    let dst_interfaces: Vec<IfId> = sim
        .topology()
        .as_node(figure1::DST)
        .unwrap()
        .interfaces
        .keys()
        .copied()
        .collect();
    sim.node_mut(figure1::DST).unwrap().add_origination(
        OriginationSpec::plain(dst_interfaces)
            .with_extensions(PcbExtensions::none().with_algorithm(reference)),
    );
    sim.run_rounds(8).expect("rounds");

    let src = sim.node(figure1::SRC).unwrap();
    let paths = src.path_service().paths_to_by(figure1::DST, "on-demand");
    assert!(
        !paths.is_empty(),
        "shortest-widest must discover paths at the source"
    );
    // Among the discovered paths, the best by (bandwidth desc, latency asc) is the
    // 100 Mbps / 30 ms path via Y (the Src-Y link caps the gigabit detour at 100 Mbps).
    let best = paths
        .iter()
        .max_by_key(|p| (p.metrics.bandwidth, std::cmp::Reverse(p.metrics.latency)))
        .unwrap();
    assert!(best.metrics.bandwidth >= Bandwidth::from_mbps(100));
}

/// The three highlighted paths of Fig. 1 all exist in the control plane when the three
/// corresponding criteria run in parallel.
#[test]
fn all_three_figure1_paths_are_discoverable_in_parallel() {
    let mut sim = figure1_simulation(vec![
        RacConfig::static_rac("1SP", "1SP"),
        RacConfig::static_rac("DO", "DO"),
        RacConfig::static_rac("widest", "widest"),
        RacConfig::static_rac("HD", "HD"),
    ]);
    sim.run_rounds(6).expect("rounds");
    let src = sim.node(figure1::SRC).unwrap();
    let all = src.path_service().paths_to(figure1::DST);
    let latencies: Vec<u64> = all.iter().map(|p| p.metrics.latency.as_millis()).collect();
    assert!(
        latencies.contains(&20),
        "shortest 20 ms path missing: {latencies:?}"
    );
    assert!(
        latencies.contains(&30),
        "30 ms detour missing: {latencies:?}"
    );
    // The wide 40 ms detour via Y and Z appears once bandwidth-aware selection runs.
    let has_wide_detour = all.iter().any(|p| p.metrics.hops == 3);
    assert!(has_wide_detour, "3-hop detour missing");
}
