//! Concurrency stress tests for the destination-sharded path service: a hot-destination
//! workload (one destination receiving most pull-return registrations, next to a handful
//! of background destinations) hammered from scoped threads. The service must lose no
//! registration, refresh — not duplicate — under racing double-registrations, report
//! exact occupancy and limit-eviction counts afterwards, and the node-level pull-return
//! commit path must match a serial single-shard reference byte for byte.

use irec_core::path_service::{RegisteredPath, ShardedPathService};
use irec_core::{IrecNode, NodeConfig, PropagationPolicy, PullReturn, SharedAlgorithmStore};
use irec_crypto::{Digest, KeyRegistry, Signer};
use irec_pcb::{Pcb, PcbExtensions, PcbId, StaticInfo};
use irec_topology::builder::figure1_topology;
use irec_types::{
    AsId, Bandwidth, IfId, InterfaceGroupId, Latency, PathMetrics, SimDuration, SimTime,
};
use std::sync::Arc;

/// The hot destination: most of the workload registers paths towards it.
const HOT_DEST: AsId = AsId(70);
const HOT_PATHS: u64 = 600;
/// Background destinations with small path sets, so the workload crosses shard boundaries.
const BACKGROUND_DESTS: u64 = 7;
const BACKGROUND_PATHS: u64 = 24;

fn path(destination: AsId, id: u64) -> RegisteredPath {
    let mut digest = [0u8; 32];
    digest[..8].copy_from_slice(&id.to_le_bytes());
    digest[8..16].copy_from_slice(&destination.value().to_le_bytes());
    RegisteredPath {
        pcb_id: PcbId(Digest(digest)),
        destination,
        destination_interface: IfId(1),
        local_interface: IfId(2),
        algorithm: "PD".to_string(),
        group: InterfaceGroupId::DEFAULT,
        metrics: PathMetrics {
            latency: Latency::from_millis(10 + id),
            bandwidth: Bandwidth::from_mbps(100),
            hops: 2,
        },
        // Distinct link sequences per (destination, id): registrations never refresh each
        // other, so the expected occupancy is exact.
        links: vec![(destination, IfId(id as u32)), (AsId(900 + id), IfId(1))],
        registered_at: SimTime::ZERO,
    }
}

fn workload() -> Vec<RegisteredPath> {
    let mut paths = Vec::new();
    for id in 0..HOT_PATHS {
        paths.push(path(HOT_DEST, id));
    }
    for dest in 1..=BACKGROUND_DESTS {
        for id in 0..BACKGROUND_PATHS {
            paths.push(path(AsId(dest), id));
        }
    }
    paths
}

fn distinct_count() -> usize {
    (HOT_PATHS + BACKGROUND_DESTS * BACKGROUND_PATHS) as usize
}

/// Scoped threads hammer `register` so that **two** threads race every path — the second
/// registration must refresh, not duplicate — while the limit stays out of reach. No
/// registration may be lost and the occupancy must be exact for any shard count.
#[test]
fn hot_destination_hammering_loses_no_registrations() {
    for shards in [1usize, 4, 7, 16] {
        let service = ShardedPathService::with_limit(2_000, shards);
        let paths = workload();
        let writers = 8usize;
        std::thread::scope(|scope| {
            for writer in 0..writers {
                let service = &service;
                let paths = &paths;
                scope.spawn(move || {
                    // Writers w and w+4 register the same half of the workload: every path
                    // is attempted exactly twice, by two different threads.
                    for (index, p) in paths.iter().enumerate() {
                        if index % (writers / 2) != writer % (writers / 2) {
                            continue;
                        }
                        service.register(p.clone());
                    }
                });
            }
        });

        assert_eq!(
            service.len(),
            distinct_count(),
            "occupancy at {shards} shards"
        );
        assert_eq!(
            service.paths_to(HOT_DEST).len(),
            HOT_PATHS as usize,
            "hot destination paths at {shards} shards"
        );
        assert_eq!(
            service.paths_to_by(HOT_DEST, "PD").len(),
            HOT_PATHS as usize
        );
        assert_eq!(
            service.destinations().len(),
            1 + BACKGROUND_DESTS as usize,
            "destinations at {shards} shards"
        );
        assert_eq!(service.evictions(), 0, "no limit evictions expected");
        // Shards partition the workload completely.
        let sharded_total: usize = (0..service.shard_count())
            .map(|s| service.shard_len(s))
            .sum();
        assert_eq!(sharded_total, distinct_count());
    }
}

/// The per-key limit under concurrent registration: inserting N distinct paths into one
/// `(RAC, destination, group)` key evicts exactly `N - limit` registrations, no matter how
/// the racing writers interleave — the eviction *count* is order-independent even though
/// which registrations survive is not observable here.
#[test]
fn limit_eviction_count_is_exact_under_concurrency() {
    const LIMIT: usize = 20;
    for shards in [1usize, 4, 7] {
        let service = ShardedPathService::with_limit(LIMIT, shards);
        let paths: Vec<RegisteredPath> = (0..HOT_PATHS).map(|id| path(HOT_DEST, id)).collect();
        let writers = 4usize;
        std::thread::scope(|scope| {
            for writer in 0..writers {
                let service = &service;
                let paths = &paths;
                scope.spawn(move || {
                    for (index, p) in paths.iter().enumerate() {
                        if index % writers == writer {
                            service.register(p.clone());
                        }
                    }
                });
            }
        });
        assert_eq!(service.paths_to(HOT_DEST).len(), LIMIT);
        assert_eq!(service.len(), LIMIT);
        assert_eq!(
            service.evictions(),
            HOT_PATHS - LIMIT as u64,
            "eviction count at {shards} shards"
        );
    }
}

/// The node-level commit path the delivery plane drives: pull returns partitioned into
/// per-shard inboxes and committed from scoped threads must leave the path service
/// byte-identical to a serial single-shard reference — same paths, same order.
#[test]
fn concurrent_pull_returns_match_serial_reference() {
    let topology = Arc::new(figure1_topology());
    let registry = KeyRegistry::with_ases(1, 16);
    let store = SharedAlgorithmStore::new();
    let node_with_shards = |path_shards: usize| -> IrecNode {
        let mut config = NodeConfig::default().with_policy(PropagationPolicy::All);
        config.path_shards = path_shards;
        IrecNode::new(
            AsId(1),
            config,
            Arc::clone(&topology),
            registry.clone(),
            store.clone(),
        )
        .expect("node setup")
    };

    // The returned beacons: for each of six target ASes, a fan of pull returns whose
    // beacons traverse distinct egress interfaces (distinct link sequences, so every
    // return registers its own path). The fan stays below the per-key registration limit
    // (20) so no path is evicted and the expected occupancy is exact.
    let signer = Signer::new(AsId(1), registry.clone());
    let mut returns: Vec<PullReturn> = Vec::new();
    for target in 60..66u64 {
        for seq in 0..18u64 {
            let mut pcb = Pcb::originate(
                AsId(1),
                target * 1_000 + seq,
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_hours(6),
                PcbExtensions::none().with_target(AsId(target)),
            );
            pcb.extend(
                IfId::NONE,
                IfId(1 + seq as u32),
                StaticInfo::origin(
                    Latency::from_millis(5 + seq),
                    Bandwidth::from_mbps(100),
                    None,
                ),
                &signer,
            )
            .expect("beacon extension");
            returns.push(PullReturn {
                from_as: AsId(target),
                to_as: AsId(1),
                target_ingress: IfId(2),
                pcb,
            });
        }
    }

    // Serial single-shard reference.
    let reference = node_with_shards(1);
    for ret in &returns {
        reference.handle_pull_return(ret.clone(), SimTime::ZERO);
    }
    let reference_paths = reference.path_service().all();
    assert_eq!(reference_paths.len(), returns.len());

    for path_shards in [2usize, 4, 7] {
        let node = node_with_shards(path_shards);
        // Partition into per-shard inboxes (delivery order preserved within a shard),
        // then commit every inbox on its own thread — the delivery plane's apply shape.
        let mut inboxes: Vec<Vec<&PullReturn>> =
            vec![Vec::new(); node.path_service().shard_count()];
        for ret in &returns {
            inboxes[node.path_shard_of(ret.from_as)].push(ret);
        }
        std::thread::scope(|scope| {
            for (shard, inbox) in inboxes.iter().enumerate() {
                let node = &node;
                scope.spawn(move || {
                    for ret in inbox {
                        node.handle_pull_return_in_shard(shard, (*ret).clone(), SimTime::ZERO);
                    }
                });
            }
        });
        assert_eq!(
            node.path_service().all(),
            reference_paths,
            "paths diverged at {path_shards} path shards"
        );
    }
}
