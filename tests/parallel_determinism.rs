//! Acceptance tests for the parallel RAC execution engine: a simulation run with
//! `parallelism > 1` (node-phase workers and per-node RAC workers) must be byte-identical
//! to a sequential run — same registered paths in the same order, same overhead counters,
//! same delivery accounting.

use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
use irec_metrics::RegisteredPath;
use irec_sim::{DeliveryStats, Simulation, SimulationConfig};
use irec_topology::builder::figure1_topology;
use irec_topology::{GeneratorConfig, TopologyGenerator};
use std::sync::Arc;

/// Everything observable about a finished run, for exact comparison.
struct RunFingerprint {
    paths: Vec<RegisteredPath>,
    overhead_samples: Vec<u64>,
    overhead_total: u64,
    stats: DeliveryStats,
    occupancy: usize,
}

fn run_figure1(parallelism: usize, rounds: usize) -> RunFingerprint {
    run_figure1_sharded(parallelism, rounds, 0)
}

fn run_figure1_sharded(parallelism: usize, rounds: usize, ingress_shards: usize) -> RunFingerprint {
    let mut sim = Simulation::new(
        Arc::new(figure1_topology()),
        SimulationConfig::default()
            .with_parallelism(parallelism)
            .with_ingress_shards(ingress_shards),
        move |_| {
            NodeConfig::paper_simulation(false)
                .with_policy(PropagationPolicy::All)
                .with_parallelism(parallelism)
        },
    )
    .expect("simulation setup");
    sim.run_rounds(rounds).expect("beaconing rounds");
    RunFingerprint {
        paths: sim.registered_paths(),
        overhead_samples: sim.overhead().samples(),
        overhead_total: sim.overhead().total(),
        stats: sim.delivery_stats(),
        occupancy: sim.ingress_occupancy(),
    }
}

fn assert_identical(sequential: &RunFingerprint, parallel: &RunFingerprint, parallelism: usize) {
    assert_eq!(
        sequential.paths.len(),
        parallel.paths.len(),
        "path count diverged at parallelism {parallelism}"
    );
    // Order included: the deterministic merge must reproduce the sequential registration
    // order exactly, not just the same set.
    for (index, (a, b)) in sequential.paths.iter().zip(&parallel.paths).enumerate() {
        assert_eq!(a, b, "path {index} diverged at parallelism {parallelism}");
    }
    assert_eq!(
        sequential.overhead_samples, parallel.overhead_samples,
        "overhead samples diverged at parallelism {parallelism}"
    );
    assert_eq!(sequential.overhead_total, parallel.overhead_total);
    assert_eq!(sequential.stats, parallel.stats);
    assert_eq!(sequential.occupancy, parallel.occupancy);
}

/// The headline acceptance criterion: on the Figure-1 topology with the paper's five-RAC
/// deployment, every parallelism level produces byte-identical registered paths and
/// overhead counters to the sequential run.
#[test]
fn parallel_figure1_run_is_byte_identical_to_sequential() {
    let sequential = run_figure1(1, 5);
    assert!(
        !sequential.paths.is_empty(),
        "the scenario must register paths"
    );
    for parallelism in [2, 4, 8] {
        let parallel = run_figure1(parallelism, 5);
        assert_identical(&sequential, &parallel, parallelism);
    }
}

/// Sharding the ingress database must not change a single observable byte either: explicit
/// shard counts (including a non-power-of-two), stacked with engine parallelism, reproduce
/// the sequential single-shard run exactly.
#[test]
fn ingress_sharding_is_byte_identical_across_shard_counts() {
    let sequential = run_figure1_sharded(1, 5, 1);
    assert!(!sequential.paths.is_empty());
    for ingress_shards in [1usize, 4, 7] {
        for parallelism in [1usize, 4] {
            let sharded = run_figure1_sharded(parallelism, 5, ingress_shards);
            assert_identical(&sequential, &sharded, parallelism);
        }
    }
}

/// Same guarantee on a generated topology with valley-free policy (sparser selections,
/// different propagation pattern).
#[test]
fn parallel_generated_topology_run_is_byte_identical_to_sequential() {
    let run = |parallelism: usize| {
        let topology = Arc::new(TopologyGenerator::new(GeneratorConfig::tiny(9)).generate());
        let mut sim = Simulation::new(
            topology,
            SimulationConfig::default().with_parallelism(parallelism),
            move |_| {
                NodeConfig::default()
                    .with_racs(vec![
                        RacConfig::static_rac("1SP", "1SP"),
                        RacConfig::static_rac("5SP", "5SP"),
                        RacConfig::static_rac("HD", "HD"),
                        RacConfig::static_rac("DON", "DO"),
                    ])
                    .with_parallelism(parallelism)
            },
        )
        .expect("simulation setup");
        sim.run_rounds(4).expect("beaconing rounds");
        RunFingerprint {
            paths: sim.registered_paths(),
            overhead_samples: sim.overhead().samples(),
            overhead_total: sim.overhead().total(),
            stats: sim.delivery_stats(),
            occupancy: sim.ingress_occupancy(),
        }
    };
    let sequential = run(1);
    assert!(!sequential.paths.is_empty());
    let parallel = run(4);
    assert_identical(&sequential, &parallel, 4);
}
