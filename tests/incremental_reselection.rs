//! Acceptance tests for churn-incremental re-selection: a seeded [`ChurnGenerator`]
//! timeline is applied to a live simulation via [`ChurnEngine::apply_delta`], whose
//! returned [`SelectionDelta`]s drive one [`IncrementalSelection`] old/new-table per AS.
//! After every churn step, the incremental selection over every (node, batch) must equal
//! a from-scratch run of the wrapped algorithm — while the stats counters prove that
//! batches untouched by the step's deltas were *reused*, not recomputed. That pairing
//! (equality + reuse) is the whole point of the table: a link flap re-scores only the
//! hop chains that cross it.

use irec_algorithms::incremental::{IncrementalSelection, SelectionDelta};
use irec_algorithms::{catalog, AlgorithmContext, Candidate, CandidateBatch};
use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
use irec_sim::{ChurnConfig, ChurnEngine, ChurnGenerator, Simulation, SimulationConfig};
use irec_topology::{GeneratorConfig, TopologyGenerator};
use irec_types::{AsId, IfId, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

const ASES: usize = 10;
const STEPS: usize = 4;
const MAX_SELECTED: usize = 5;

fn node_config(_: AsId) -> NodeConfig {
    NodeConfig::default()
        .with_policy(PropagationPolicy::All)
        .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
}

fn simulation(seed: u64) -> Simulation {
    let config = GeneratorConfig {
        num_ases: ASES,
        seed,
        ..Default::default()
    };
    Simulation::new(
        Arc::new(TopologyGenerator::new(config).generate()),
        SimulationConfig::default(),
        node_config,
    )
    .expect("simulation setup")
}

/// Snapshots every (origin, group) candidate batch of one node's ingress db, in
/// deterministic key order.
fn node_batches(sim: &Simulation, asn: AsId) -> Vec<CandidateBatch> {
    let node = sim.node(asn).expect("live node");
    let db = node.ingress().db();
    db.batch_keys()
        .into_iter()
        .filter_map(|key| db.batch_view(&key, sim.now()))
        .map(|view| {
            let mut batch = CandidateBatch::new(
                view.key.origin,
                view.key.group,
                view.beacons
                    .iter()
                    .map(|b| Candidate::new(b.pcb.clone(), b.ingress))
                    .collect(),
            );
            batch.target = view.key.target;
            batch
        })
        .collect()
}

/// One incremental-vs-full comparison pass over every live node: every batch selected
/// through the node's incremental table must match a direct run of the wrapped
/// algorithm. Ends each node's pass with a `commit_round`, aging out vanished batches.
fn assert_incremental_matches_full(
    sim: &Simulation,
    tables: &mut BTreeMap<AsId, IncrementalSelection>,
) -> Result<()> {
    for asn in sim.live_ases() {
        let inc = tables
            .entry(asn)
            .or_insert_with(|| IncrementalSelection::new(catalog::by_name("5SP").unwrap()));
        let local_as = sim.topology().as_node(asn)?;
        let egress: Vec<IfId> = local_as.interfaces.keys().copied().collect();
        for batch in node_batches(sim, asn) {
            let ctx = AlgorithmContext::new(local_as, egress.clone(), MAX_SELECTED);
            let incremental = inc.select(&batch, &ctx)?;
            let full = inc.algorithm().clone().select(&batch, &ctx)?;
            assert_eq!(
                incremental, full,
                "incremental selection diverged from full recompute at AS {asn} \
                 for origin {} group {:?}",
                batch.origin, batch.group
            );
        }
        inc.commit_round();
    }
    Ok(())
}

/// The headline property over three seeded timelines: per churn step, incremental
/// equals full recompute everywhere; a second pass over the unchanged plane is pure
/// reuse (zero recomputes); and the timeline's deltas actually invalidate entries.
#[test]
fn incremental_reselection_matches_full_recompute_over_churn_timeline() {
    let mut total_invalidated = 0usize;
    for seed in 0..3u64 {
        let mut sim = simulation(seed);
        sim.run_rounds(3).expect("warmup rounds");
        let config = ChurnConfig::default().with_rate(1.0).with_seed(seed);
        let mut generator = ChurnGenerator::new(config);
        let mut engine = ChurnEngine::new(config, node_config);
        let mut tables: BTreeMap<AsId, IncrementalSelection> = BTreeMap::new();

        // Baseline pass: populates every table, all recomputes.
        assert_incremental_matches_full(&sim, &mut tables).unwrap();
        let baseline: usize = tables.values().map(|t| t.stats().recomputed).sum();
        assert!(baseline > 0, "warmup must produce candidate batches");

        let mut applied = 0usize;
        for _ in 0..STEPS {
            let count = generator.step_delta_count();
            for _ in 0..count {
                let Some(delta) = generator.draw_delta(&sim) else {
                    break;
                };
                let selection_delta: SelectionDelta =
                    engine.apply_delta(&mut sim, delta).expect("delta applies");
                for table in tables.values_mut() {
                    table.apply_delta(&selection_delta);
                }
                applied += 1;
            }
            sim.run_rounds(2).expect("settle rounds");
            // First pass after the step: re-scores whatever the deltas (and the round's
            // fresh beacons) touched, equal to full recompute everywhere.
            assert_incremental_matches_full(&sim, &mut tables).unwrap();
            let recomputed_after_step: usize = tables.values().map(|t| t.stats().recomputed).sum();
            // Second pass over the unchanged plane: the old table answers everything.
            assert_incremental_matches_full(&sim, &mut tables).unwrap();
            let recomputed_after_repeat: usize =
                tables.values().map(|t| t.stats().recomputed).sum();
            assert_eq!(
                recomputed_after_repeat, recomputed_after_step,
                "an unchanged plane must be served entirely from the table (seed {seed})"
            );
        }
        assert!(applied > 0, "a rate-1.0 timeline must draw deltas");

        let reused: usize = tables.values().map(|t| t.stats().reused).sum();
        assert!(
            reused > 0,
            "repeat passes must be served from the table (seed {seed})"
        );
        total_invalidated += tables
            .values()
            .map(|t| t.stats().invalidated)
            .sum::<usize>();
    }
    assert!(
        total_invalidated > 0,
        "rate-1.0 timelines must invalidate table entries somewhere across the seeds"
    );
}

/// Catalog-swap churn maps to `SelectionDelta::All`: everything invalidates, and the
/// next pass recomputes every batch — still equal to the full recompute.
#[test]
fn catalog_swap_invalidates_everything() {
    let mut sim = simulation(9);
    sim.run_rounds(3).expect("warmup rounds");
    let mut tables: BTreeMap<AsId, IncrementalSelection> = BTreeMap::new();
    assert_incremental_matches_full(&sim, &mut tables).unwrap();
    let invalidated: usize = tables
        .values_mut()
        .map(|t| t.apply_delta(&SelectionDelta::All))
        .sum();
    assert!(invalidated > 0, "populated tables must drop entries");
    for table in tables.values() {
        assert!(table.is_empty());
    }
    assert_incremental_matches_full(&sim, &mut tables).unwrap();
}
