//! Failure-injection integration tests: the control plane must stay healthy when it receives
//! corrupted beacons, hash-mismatched on-demand algorithms, or hostile (non-terminating)
//! algorithm code.

use irec_core::beacon_db::BatchKey;
use irec_core::{
    IngressGateway, NodeConfig, OriginationSpec, PropagationPolicy, Rac, RacConfig,
    SharedAlgorithmStore,
};
use irec_crypto::{KeyRegistry, Signer, Verifier};
use irec_irvm::{Instruction, Program};
use irec_pcb::{AlgorithmRef, Pcb, PcbExtensions, StaticInfo};
use irec_sim::{Simulation, SimulationConfig};
use irec_topology::builder::{figure1, figure1_topology};
use irec_topology::{AsNode, Tier};
use irec_types::{
    AlgorithmId, AsId, Bandwidth, IfId, InterfaceGroupId, Latency, SimDuration, SimTime,
};
use std::sync::Arc;

fn beacon(registry: &KeyRegistry, origin: u64, extensions: PcbExtensions) -> Pcb {
    let signer = Signer::new(AsId(origin), registry.clone());
    let mut pcb = Pcb::originate(
        AsId(origin),
        0,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_hours(6),
        extensions,
    );
    pcb.extend(
        IfId::NONE,
        IfId(1),
        StaticInfo::origin(Latency::from_millis(10), Bandwidth::from_mbps(100), None),
        &signer,
    )
    .unwrap();
    pcb
}

fn local_as() -> AsNode {
    let mut node = AsNode::new(AsId(99), Tier::Tier2);
    node.interfaces.insert(
        IfId(1),
        irec_topology::Interface {
            id: IfId(1),
            owner: node.id,
            location: irec_types::GeoCoord::new(0.0, 0.0),
            link: irec_types::LinkId(0),
        },
    );
    node
}

/// Corrupted (bit-flipped) beacons are rejected at the ingress gateway and never reach the
/// ingress database, while valid beacons keep flowing.
#[test]
fn corrupted_beacons_are_dropped_without_poisoning_the_database() {
    let registry = KeyRegistry::with_ases(3, 16);
    let gateway = IngressGateway::new(AsId(99), Verifier::new(registry.clone()));

    let good = beacon(&registry, 1, PcbExtensions::none());
    let mut corrupted = beacon(&registry, 2, PcbExtensions::none());
    corrupted.entries[0].static_info.link_bandwidth = Bandwidth::from_gbps(100_000);

    gateway.receive(good, IfId(1), SimTime::ZERO).unwrap();
    assert!(gateway.receive(corrupted, IfId(1), SimTime::ZERO).is_err());
    assert_eq!(gateway.stats().accepted, 1);
    assert_eq!(gateway.stats().rejected, 1);
    assert_eq!(gateway.db().len(), 1);
}

/// An on-demand algorithm whose fetched code does not match the hash pinned in the signed
/// PCB is refused; a subsequent legitimate algorithm still runs.
#[test]
fn hash_mismatched_on_demand_algorithm_is_refused_then_recovery_works() {
    let registry = KeyRegistry::with_ases(3, 16);
    let store = SharedAlgorithmStore::new();
    let node = local_as();

    // The "attacker" publishes module A but pins the hash of module B in the beacon.
    let module_a = irec_irvm::programs::lowest_latency(5).to_module_bytes();
    store.publish(AsId(1), AlgorithmId(1), module_a);
    let bogus = AlgorithmRef::new(AlgorithmId(1), irec_crypto::sha256(b"not the module"));
    let bad_beacon = beacon(&registry, 1, PcbExtensions::none().with_algorithm(bogus));

    let rac = Rac::new_on_demand(RacConfig::on_demand_rac("od"), Arc::new(store.clone())).unwrap();
    let key = BatchKey {
        origin: AsId(1),
        group: InterfaceGroupId::DEFAULT,
        target: None,
    };
    let stored = Arc::new(irec_core::StoredBeacon {
        pcb: bad_beacon,
        ingress: IfId(1),
        received_at: SimTime::ZERO,
    });
    let err = rac
        .process_candidates(&key, &[stored], &node, &[IfId(1)])
        .unwrap_err();
    assert_eq!(err.category(), "verification");
    assert_eq!(rac.cached_algorithms(), 0);

    // A correctly referenced algorithm from another origin still works afterwards.
    let good_ref = store.publish(
        AsId(2),
        AlgorithmId(2),
        irec_irvm::programs::lowest_latency(5).to_module_bytes(),
    );
    let good_beacon = beacon(&registry, 2, PcbExtensions::none().with_algorithm(good_ref));
    let key2 = BatchKey {
        origin: AsId(2),
        group: InterfaceGroupId::DEFAULT,
        target: None,
    };
    let stored = Arc::new(irec_core::StoredBeacon {
        pcb: good_beacon,
        ingress: IfId(2),
        received_at: SimTime::ZERO,
    });
    let (outputs, _) = rac
        .process_candidates(&key2, &[stored], &node, &[IfId(1)])
        .unwrap();
    assert_eq!(outputs.len(), 1);
    assert_eq!(rac.cached_algorithms(), 1);
}

/// A hostile on-demand algorithm (infinite loop) is contained by the IRVM fuel limit: the
/// control plane as a whole keeps running and other criteria keep discovering paths.
#[test]
fn non_terminating_on_demand_algorithm_is_sandboxed_and_does_not_break_beaconing() {
    let topology = Arc::new(figure1_topology());
    let mut sim = Simulation::new(Arc::clone(&topology), SimulationConfig::default(), |_| {
        NodeConfig::default()
            .with_policy(PropagationPolicy::All)
            .with_racs(vec![
                RacConfig::static_rac("1SP", "1SP"),
                RacConfig::on_demand_rac("on-demand"),
            ])
    })
    .unwrap();

    // The destination ships a non-terminating algorithm. Program validation cannot reject it
    // (it is syntactically fine); the sandbox must contain it at run time.
    let hostile = Program::new("spin-forever", 20, vec![Instruction::Jump(0)]);
    let reference = sim
        .node(figure1::DST)
        .unwrap()
        .publish_algorithm(AlgorithmId(66), &hostile);
    let dst_interfaces: Vec<IfId> = topology
        .as_node(figure1::DST)
        .unwrap()
        .interfaces
        .keys()
        .copied()
        .collect();
    sim.node_mut(figure1::DST).unwrap().add_origination(
        OriginationSpec::plain(dst_interfaces)
            .with_extensions(PcbExtensions::none().with_algorithm(reference)),
    );

    sim.run_rounds(6)
        .expect("rounds survive the hostile algorithm");

    // The hostile algorithm selected nothing (every candidate evaluation hits the fuel
    // limit and is treated as rejected), but ordinary criteria are unaffected.
    let src = sim.node(figure1::SRC).unwrap();
    assert!(src
        .path_service()
        .paths_to_by(figure1::DST, "on-demand")
        .is_empty());
    assert!(!src
        .path_service()
        .paths_to_by(figure1::DST, "1SP")
        .is_empty());
    assert!((sim.connectivity() - 1.0).abs() < f64::EPSILON);
}

/// Regression test: control-plane messages addressed to an AS that has no node (here: one
/// taken offline by failure injection) must be accounted as **dropped**, for both PCB
/// deliveries and pull-based returns. They used to be silently discarded, leaving
/// `delivered + dropped` short of the messages actually sent.
#[test]
fn messages_to_an_offline_as_are_counted_as_dropped() {
    // Both simulations are identical (and the simulator is deterministic); only the second
    // takes Src offline before the last round.
    let build = || {
        let topology = Arc::new(figure1_topology());
        let mut sim = Simulation::new(Arc::clone(&topology), SimulationConfig::default(), |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(vec![
                    RacConfig::static_rac("1SP", "1SP").with_pull_based(true)
                ])
        })
        .unwrap();
        // Src originates a pull-based beacon towards Dst every round, so Dst keeps
        // producing pull returns addressed to Src.
        let src_interfaces: Vec<IfId> = topology
            .as_node(figure1::SRC)
            .unwrap()
            .interfaces
            .keys()
            .copied()
            .collect();
        sim.node_mut(figure1::SRC).unwrap().add_origination(
            OriginationSpec::plain(src_interfaces)
                .with_extensions(irec_pcb::PcbExtensions::none().with_target(figure1::DST)),
        );
        sim
    };

    let mut control = build();
    control.run_rounds(4).unwrap();

    let mut injected = build();
    injected.run_rounds(3).unwrap();
    // Src goes offline. The next round's beacons addressed to it — and the pull return Dst
    // keeps producing for the pull-based beacon still in its ingress database — have no
    // receiver and must be accounted as dropped (they used to vanish without a trace; the
    // control run even counts *more* drops at Src's gateway, which rejects looped-back
    // beacons, so the strict inequality below fails without the accounting fix).
    assert!(injected.remove_node(figure1::SRC).is_some());
    assert!(injected.remove_node(figure1::SRC).is_none());
    let delivered_before = injected.delivered_messages();
    injected.run_rounds(1).unwrap();

    assert!(
        injected.dropped_messages() > control.dropped_messages(),
        "missing-receiver drops must be accounted: injected {} vs control {}",
        injected.dropped_messages(),
        control.dropped_messages()
    );
    // The remaining nodes keep exchanging beacons normally.
    assert!(injected.delivered_messages() > delivered_before);
}

/// Regression test for mid-run node re-addition: after remove → add → re-beacon, the
/// rejoined AS must regain full reachability (its neighbors' propagation-dedup marks for
/// the interfaces facing it are reset, or steady-state selections would never be re-sent
/// to it), and the whole flap — paths, accounting, occupancy — must be byte-identical
/// across the round schedulers and every parallelism/shard plane.
#[test]
fn node_flap_restores_reachability_with_exact_accounting() {
    use irec_sim::RoundScheduler;
    let run = |scheduler: RoundScheduler, width: usize, ingress: usize, path: usize| {
        let node_config = move |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
        };
        let mut sim = Simulation::new(
            Arc::new(figure1_topology()),
            SimulationConfig::default()
                .with_round_scheduler(scheduler)
                .with_parallelism(width)
                .with_delivery_parallelism(width)
                .with_ingress_shards(ingress)
                .with_path_shards(path),
            node_config,
        )
        .unwrap();
        sim.run_rounds(4).unwrap();
        assert!((sim.connectivity() - 1.0).abs() < f64::EPSILON);
        assert!(sim.remove_node(figure1::X).is_some());
        sim.run_rounds(2).unwrap();
        assert_eq!(sim.live_ases().len(), 4, "X must be gone");
        sim.add_node(figure1::X, node_config(figure1::X)).unwrap();
        assert!(
            sim.add_node(figure1::X, node_config(figure1::X)).is_err(),
            "re-adding a live node must be rejected"
        );
        sim.run_rounds(4).unwrap();
        assert_eq!(sim.pending_events(), 0, "rounds must drain the event queue");
        (
            sim.registered_paths(),
            sim.delivery_stats(),
            sim.ingress_occupancy(),
            sim.connectivity(),
        )
    };

    let reference = run(irec_sim::RoundScheduler::Barrier, 1, 1, 1);
    assert!(
        (reference.3 - 1.0).abs() < f64::EPSILON,
        "re-beaconing must restore full reachability, got connectivity {}",
        reference.3
    );
    assert!(
        reference.1.dropped_no_node > 0,
        "the offline window must drop messages"
    );
    for (scheduler, width, ingress, path) in [
        (irec_sim::RoundScheduler::Barrier, 4, 4, 7),
        (irec_sim::RoundScheduler::Dag, 1, 7, 4),
        (irec_sim::RoundScheduler::Dag, 4, 4, 4),
    ] {
        assert_eq!(
            run(scheduler, width, ingress, path),
            reference,
            "node flap diverged under {scheduler} x{width} ingress={ingress} path={path}"
        );
    }
}

/// Regression test pinning the drop-counter split: a message emitted over a downed link
/// endpoint counts as `dropped_link_down` even when its addressee is *also* gone (the
/// downed-link check precedes the missing-node check in every delivery path), while
/// messages to the missing node over up links count as `dropped_no_node` — and the split
/// is identical under both schedulers and all parallelism planes.
#[test]
fn link_down_and_node_removal_split_drop_counters_deterministically() {
    use irec_sim::RoundScheduler;
    let run = |scheduler: RoundScheduler, width: usize| {
        let mut sim = Simulation::new(
            Arc::new(figure1_topology()),
            SimulationConfig::default()
                .with_round_scheduler(scheduler)
                .with_parallelism(width)
                .with_delivery_parallelism(width),
            |_| {
                NodeConfig::default()
                    .with_policy(PropagationPolicy::All)
                    .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
            },
        )
        .unwrap();
        sim.run_rounds(3).unwrap();
        // Down the Src–X link *and* remove X: Src's beacons over the downed link hit the
        // link-down arm; beacons to X over its other (up) links hit the no-node arm.
        let src_x = sim
            .topology()
            .link_at(figure1::SRC, IfId(1))
            .expect("Src's first interface is the Src-X link")
            .id;
        sim.set_link_down(src_x).unwrap();
        assert!(sim.remove_node(figure1::X).is_some());
        sim.run_rounds(2).unwrap();
        (sim.delivery_stats(), sim.registered_paths())
    };

    let (stats, paths) = run(RoundScheduler::Barrier, 1);
    assert!(
        stats.dropped_link_down > 0,
        "the downed link must account drops"
    );
    assert!(
        stats.dropped_no_node > 0,
        "the removed node must account drops"
    );
    for (scheduler, width) in [
        (RoundScheduler::Barrier, 4),
        (RoundScheduler::Dag, 1),
        (RoundScheduler::Dag, 4),
    ] {
        let (other_stats, other_paths) = run(scheduler, width);
        assert_eq!(
            (other_stats, other_paths.len()),
            (stats, paths.len()),
            "drop-counter split diverged under {scheduler} x{width}"
        );
    }
}

/// Expired beacons are evicted from the databases and do not linger in path computation.
#[test]
fn expired_beacons_are_evicted_from_the_control_plane() {
    let registry = KeyRegistry::with_ases(3, 16);
    let gateway = IngressGateway::new(AsId(99), Verifier::new(registry.clone()));
    // Valid for 6 hours.
    let pcb = beacon(&registry, 1, PcbExtensions::none());
    gateway.receive(pcb, IfId(1), SimTime::ZERO).unwrap();
    assert_eq!(gateway.db().len(), 1);
    // After 7 simulated hours the eviction pass removes it.
    let later = SimTime::ZERO + SimDuration::from_hours(7);
    let evicted = gateway.db().evict_expired(later, SimDuration::ZERO);
    assert_eq!(evicted, 1);
    assert_eq!(gateway.db().len(), 0);
}
