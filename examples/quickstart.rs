//! Quickstart: build a small topology, run IREC beaconing with two parallel routing
//! algorithms, and query the discovered paths from the source AS's path service.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The topology is the running example of the paper's Fig. 1: a source AS, a destination AS,
//! and three transit ASes, where every inter-domain link adds 10 ms of latency and the links
//! differ in bandwidth. Two RACs run in parallel in every AS — one optimizing latency, one
//! optimizing bandwidth — so the source ends up with both the low-latency path (good for
//! VoIP) and the high-bandwidth detour (good for bulk transfer), without either algorithm
//! knowing about the other.

use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
use irec_sim::{Simulation, SimulationConfig};
use irec_topology::builder::{figure1, figure1_topology};
use std::sync::Arc;

fn main() {
    // 1. The topology of the paper's Fig. 1 (Src=AS1, X=AS2, Dst=AS3, Y=AS4, Z=AS5).
    let topology = Arc::new(figure1_topology());
    println!(
        "topology: {} ASes, {} inter-domain links",
        topology.num_ases(),
        topology.num_links()
    );

    // 2. Every AS deploys two parallel RACs: delay optimization and widest path.
    let node_config = |_asn| {
        NodeConfig::default()
            .with_policy(PropagationPolicy::All)
            .with_racs(vec![
                RacConfig::static_rac("DO", "DO"),
                RacConfig::static_rac("widest", "widest"),
            ])
    };
    let mut sim = Simulation::new(topology, SimulationConfig::default(), node_config)
        .expect("simulation setup");

    // 3. Run a few beaconing rounds (10 simulated minutes apart, as in the paper).
    sim.run_rounds(6).expect("beaconing rounds");
    println!(
        "after {} rounds: {} control-plane messages delivered, connectivity {:.0}%",
        sim.rounds_run(),
        sim.delivered_messages(),
        sim.connectivity() * 100.0
    );

    // 4. Query the source's path service for paths towards the destination.
    let src = sim.node(figure1::SRC).expect("source node");
    println!(
        "\npaths registered at {} towards {}:",
        figure1::SRC,
        figure1::DST
    );
    let mut paths = src.path_service().paths_to(figure1::DST);
    paths.sort_by_key(|p| (p.algorithm.clone(), p.metrics.latency));
    for path in paths {
        println!(
            "  [{}] {} hops, {}, {}",
            path.algorithm, path.metrics.hops, path.metrics.latency, path.metrics.bandwidth
        );
    }

    // 5. An endpoint picks per application: lowest latency for VoIP, widest for file transfer.
    let voip = src
        .path_service()
        .paths_to_by(figure1::DST, "DO")
        .into_iter()
        .min_by_key(|p| p.metrics.latency)
        .expect("delay-optimized path exists");
    let bulk = src
        .path_service()
        .paths_to_by(figure1::DST, "widest")
        .into_iter()
        .max_by_key(|p| p.metrics.bandwidth)
        .expect("bandwidth-optimized path exists");
    println!(
        "\nVoIP picks the {} path; file transfer picks the {} path.",
        voip.metrics.latency, bulk.metrics.bandwidth
    );
}
