//! Pull-based + on-demand routing: the PD (pull-based disjointness) workflow of §VIII-B.
//!
//! ```text
//! cargo run --example on_demand_pull
//! ```
//!
//! The source AS wants a set of link-disjoint paths to a target AS (e.g. for fast failover
//! or multipath transport). It seeds the set with the paths HD has already discovered, then
//! iteratively originates *pull-based, on-demand* beacons: each round ships a fresh IRVM
//! algorithm that rejects every path crossing a link already covered; the target returns the
//! matching beacons to the source, which keeps the first new path and repeats.

use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
use irec_metrics::tlf::min_links_to_disconnect;
use irec_sim::{PdWorkflow, Simulation, SimulationConfig};
use irec_topology::builder::{figure1, figure1_topology};
use std::sync::Arc;

fn main() {
    let topology = Arc::new(figure1_topology());
    let node_config = |_asn| {
        NodeConfig::default()
            .with_policy(PropagationPolicy::All)
            .with_racs(vec![
                RacConfig::static_rac("HD", "HD"),
                RacConfig::on_demand_rac("on-demand"),
            ])
    };
    let mut sim = Simulation::new(topology, SimulationConfig::default(), node_config)
        .expect("simulation setup");

    // Warm-up beaconing so HD has discovered an initial path set.
    sim.run_rounds(6).expect("warm-up rounds");
    let seeds = sim
        .node(figure1::SRC)
        .expect("source")
        .path_service()
        .paths_to_by(figure1::DST, "HD")
        .len();
    println!(
        "HD seeded {seeds} path(s) from {} to {}",
        figure1::SRC,
        figure1::DST
    );

    // Run the PD workflow: up to 5 disjoint paths.
    let mut workflow = PdWorkflow::new(figure1::SRC, figure1::DST, 5).with_rounds_per_iteration(4);
    let result = workflow.run(&mut sim).expect("PD workflow");

    println!(
        "PD finished after {} pull iteration(s) ({} without progress):",
        result.iterations, result.empty_iterations
    );
    for (i, path) in result.paths.iter().enumerate() {
        println!(
            "  path {} [{}]: {} hops, {}, links {:?}",
            i + 1,
            path.algorithm,
            path.metrics.hops,
            path.metrics.latency,
            path.links
        );
    }

    let tlf = min_links_to_disconnect(
        &result
            .paths
            .iter()
            .map(|p| p.links.clone())
            .collect::<Vec<_>>(),
    );
    println!(
        "\ntolerable link failures of the discovered set: {tlf} \
         (≥2 means the source survives any single inter-domain link failure)"
    );
}
