//! Internet-scale simulation: the paper's §VIII setup on a synthetic Internet topology.
//!
//! ```text
//! cargo run --release --example internet_scale -- [num_ases] [rounds]
//! ```
//!
//! Generates a tiered, geolocated AS topology (default 60 ASes; the paper uses the 500
//! highest-degree CAIDA ASes), deploys the paper's RAC set in every AS (1SP, 5SP, HD, DO and
//! an on-demand RAC), runs periodic beaconing, and prints connectivity, per-algorithm path
//! statistics and control-plane overhead.

use irec_core::NodeConfig;
use irec_metrics::delay::as_pair_delays;
use irec_metrics::Cdf;
use irec_sim::{Simulation, SimulationConfig};
use irec_topology::{GeneratorConfig, TopologyGenerator};
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let num_ases: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let rounds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let config = GeneratorConfig {
        num_ases,
        seed: 7,
        ..Default::default()
    };
    let topology = Arc::new(TopologyGenerator::new(config).generate());
    println!(
        "generated topology: {} ASes, {} inter-domain links",
        topology.num_ases(),
        topology.num_links()
    );

    // The paper's per-AS deployment: four static RACs plus one on-demand RAC.
    let mut sim = Simulation::new(topology, SimulationConfig::default(), |_| {
        NodeConfig::paper_simulation(false)
    })
    .expect("simulation setup");

    let start = std::time::Instant::now();
    sim.run_rounds(rounds).expect("beaconing rounds");
    println!(
        "ran {rounds} beaconing rounds in {:.1?}: {} messages delivered, {} dropped, connectivity {:.1}%",
        start.elapsed(),
        sim.delivered_messages(),
        sim.dropped_messages(),
        sim.connectivity() * 100.0
    );
    println!(
        "ingress databases hold {} live beacons across {} ASes",
        sim.ingress_occupancy(),
        sim.topology().num_ases()
    );

    // Per-algorithm registered-path statistics.
    println!("\nregistered paths per algorithm:");
    for algorithm in ["1SP", "5SP", "HD", "DON"] {
        let paths = sim.registered_paths_by(algorithm);
        if paths.is_empty() {
            println!("  {algorithm:>5}: no paths registered");
            continue;
        }
        let delays = as_pair_delays(&paths);
        let cdf = Cdf::new(delays.values().map(|l| l.as_millis_f64()).collect());
        println!(
            "  {algorithm:>5}: {:>6} paths, {:>5} AS pairs, median best delay {:.1} ms, p90 {:.1} ms",
            paths.len(),
            delays.len(),
            cdf.median().unwrap_or(f64::NAN),
            cdf.quantile(0.9).unwrap_or(f64::NAN),
        );
    }

    // Control-plane overhead (the Fig. 8c quantity).
    let overhead = Cdf::new(
        sim.overhead()
            .nonzero_samples()
            .into_iter()
            .map(|v| v as f64)
            .collect(),
    );
    println!(
        "\ncontrol-plane overhead: {} PCBs total, median {:.0} / p99 {:.0} PCBs per interface per period",
        sim.overhead().total(),
        overhead.median().unwrap_or(0.0),
        overhead.quantile(0.99).unwrap_or(0.0),
    );
}
