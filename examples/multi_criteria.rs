//! Multi-criteria path optimization with extensible criteria — the paper's Examples #1 and
//! #2 (§II-A) end to end.
//!
//! ```text
//! cargo run --example multi_criteria
//! ```
//!
//! Example #1: a VoIP client wants the lowest-latency path, a file-transfer application the
//! highest-bandwidth path. Two parallel RACs discover both.
//!
//! Example #2: a new live-video application appears that needs the highest bandwidth subject
//! to a 30 ms latency bound. Instead of standardizing a new criterion, the destination AS
//! *publishes an on-demand algorithm* (an IRVM module built from
//! `irec_irvm::programs::bounded_latency_widest`) and originates beacons referencing it; every
//! on-path AS fetches, verifies and executes it in the sandbox. The source then finds the
//! only path satisfying the live-video requirement — criteria extensibility without touching
//! the other algorithms.

use irec_core::{NodeConfig, OriginationSpec, PropagationPolicy, RacConfig};
use irec_pcb::PcbExtensions;
use irec_sim::{Simulation, SimulationConfig};
use irec_topology::builder::{figure1, figure1_topology};
use irec_types::{AlgorithmId, IfId, Latency};
use std::sync::Arc;

fn main() {
    let topology = Arc::new(figure1_topology());

    // Every AS runs three RACs: delay optimization, widest path, and an on-demand RAC that
    // executes whatever algorithm arriving beacons reference.
    let node_config = |_asn| {
        NodeConfig::default()
            .with_policy(PropagationPolicy::All)
            .with_racs(vec![
                RacConfig::static_rac("DO", "DO"),
                RacConfig::static_rac("widest", "widest"),
                RacConfig::on_demand_rac("on-demand"),
            ])
    };
    let mut sim = Simulation::new(
        Arc::clone(&topology),
        SimulationConfig::default(),
        node_config,
    )
    .expect("simulation setup");

    // ------------------------------------------------------------------ Example #1
    sim.run_rounds(6).expect("beaconing rounds");
    let src = sim.node(figure1::SRC).expect("source node");
    let voip = src
        .path_service()
        .paths_to_by(figure1::DST, "DO")
        .into_iter()
        .min_by_key(|p| p.metrics.latency)
        .expect("lowest-latency path");
    let bulk = src
        .path_service()
        .paths_to_by(figure1::DST, "widest")
        .into_iter()
        .max_by_key(|p| p.metrics.bandwidth)
        .expect("highest-bandwidth path");
    println!("Example #1 — parallel criteria:");
    println!(
        "  VoIP          -> {} hops, {}, {}",
        voip.metrics.hops, voip.metrics.latency, voip.metrics.bandwidth
    );
    println!(
        "  file transfer -> {} hops, {}, {}",
        bulk.metrics.hops, bulk.metrics.latency, bulk.metrics.bandwidth
    );

    // ------------------------------------------------------------------ Example #2
    // The destination publishes the live-video criterion as an on-demand algorithm and
    // originates beacons carrying it. No other AS needs any reconfiguration.
    let bound = Latency::from_millis(30);
    let program = irec_irvm::programs::bounded_latency_widest(bound, 5);
    let reference = sim
        .node(figure1::DST)
        .expect("destination node")
        .publish_algorithm(AlgorithmId(42), &program);
    let dst_interfaces: Vec<IfId> = topology
        .as_node(figure1::DST)
        .expect("destination exists")
        .interfaces
        .keys()
        .copied()
        .collect();
    sim.node_mut(figure1::DST)
        .expect("destination node")
        .add_origination(
            OriginationSpec::plain(dst_interfaces)
                .with_extensions(PcbExtensions::none().with_algorithm(reference)),
        );
    sim.run_rounds(6).expect("on-demand rounds");

    let src = sim.node(figure1::SRC).expect("source node");
    let live = src
        .path_service()
        .paths_to_by(figure1::DST, "on-demand")
        .into_iter()
        .filter(|p| p.metrics.latency <= bound)
        .max_by_key(|p| p.metrics.bandwidth);
    println!("\nExample #2 — on-demand criterion (widest with latency <= {bound}):");
    match live {
        Some(p) => println!(
            "  live video    -> {} hops, {}, {}  (algorithm '{}' shipped in PCBs)",
            p.metrics.hops, p.metrics.latency, p.metrics.bandwidth, program.meta.name
        ),
        None => println!("  no path satisfied the bound (unexpected on the Fig. 1 topology)"),
    }
}
