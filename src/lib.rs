//! Root package of the IREC reproduction workspace.
//!
//! This crate intentionally contains no code of its own — it exists to host the runnable
//! examples under `examples/` and the cross-crate integration tests under `tests/`. The
//! actual library lives in the `crates/` workspace members:
//!
//! * [`irec_core`] — the paper's intra-AS architecture (gateways, RACs, path service),
//! * [`irec_algorithms`] — the routing algorithms (1SP, 5SP, HD, DO, shortest-widest, PD),
//! * [`irec_irvm`] — the sandboxed on-demand algorithm VM,
//! * [`irec_pcb`] / [`irec_wire`] / [`irec_crypto`] — beacons, wire codec, signatures,
//! * [`irec_topology`] — the synthetic Internet topology substrate,
//! * [`irec_sim`] — the discrete-event control-plane simulator,
//! * [`irec_metrics`] — the evaluation metrics (delay, TLF, overhead, CDFs).

pub use irec_algorithms;
pub use irec_core;
pub use irec_crypto;
pub use irec_irvm;
pub use irec_metrics;
pub use irec_pcb;
pub use irec_sim;
pub use irec_topology;
pub use irec_types;
pub use irec_wire;
